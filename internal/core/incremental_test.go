package core

import (
	"errors"
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
)

// evalClone evaluates one split candidate the reference way: full
// SplitOperation clone, fresh context, fresh lattice, from-scratch ranks.
func evalClone(t *testing.T, g *graph.Graph, opID int, dim graph.SplitDim, n int,
	cluster *device.Cluster, est *kernels.Oracle) (*Schedule, error) {
	t.Helper()
	cand, err := graph.SplitOperation(g, opID, dim, n)
	if err != nil {
		return nil, err
	}
	return dposFresh(cand, cluster, est, Options{}, 0, nil)
}

// evalOverlay evaluates the same candidate incrementally: copy-on-write
// overlay, patched context, extended lattice, delta ranks.
func evalOverlay(t *testing.T, baseCtx *scheduleContext, baseRanks *Ranks, anc []bool,
	opID int, dim graph.SplitDim, n int, cluster *device.Cluster, est *kernels.Oracle,
	baseLat *costLattice) (*graph.SplitOverlay, *Schedule, error) {
	t.Helper()
	ov, err := graph.NewSplitOverlay(baseCtx.g, opID, dim, n)
	if err != nil {
		return nil, nil, err
	}
	octx := overlayContext(baseCtx, ov)
	clat := extendLattice(baseLat, octx, cluster.Devices(), est)
	ranks := deltaRanksOverlay(baseCtx, baseRanks, octx, anc, clat)
	s, err := dposCtx(octx, cluster, clat, Options{}, ranks, 0, nil)
	releaseRanks(ranks)
	releaseLattice(clat)
	releaseOverlayContext(octx)
	return ov, s, err
}

// TestOverlayCandidateEquivalence is the catalog-wide property behind the
// incremental calculator: for every model and every legal (op, dim, n), the
// overlay-evaluated candidate schedule must be byte-identical — placement,
// start/finish, execution order, makespan — to the SplitOperation-clone
// schedule under the overlay's CloneID mapping, and both paths must agree
// on which candidates are infeasible.
func TestOverlayCandidateEquivalence(t *testing.T) {
	const devices = 3
	cluster, err := device.SingleServer(devices)
	if err != nil {
		t.Fatal(err)
	}
	est := kernels.NewDefaultOracle(cluster)
	for _, spec := range models.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g, err := spec.Build(2)
			if err != nil {
				t.Fatal(err)
			}
			baseCtx, err := contextFor(g)
			if err != nil {
				t.Fatal(err)
			}
			baseLat := latticeFor(baseCtx, cluster, est, Options{})
			baseRanks := computeRanksCtx(baseCtx, baseLat)
			defer releaseRanks(baseRanks)

			// Under -race (tier 2 runs -race -short) a full sweep is too
			// slow; stride over the splittable ops instead.
			stride := 1
			if testing.Short() {
				stride = 7
			}
			tested := 0
			next := 0
			for opID := 0; opID < g.NumOps(); opID++ {
				dims := g.Op(opID).SplittableDims()
				if len(dims) == 0 {
					continue
				}
				if next > 0 {
					next--
					continue
				}
				next = stride - 1
				var anc []bool
				for _, dim := range dims {
					for n := 2; n <= devices; n++ {
						cs, cerr := evalClone(t, g, opID, dim, n, cluster, est)
						if anc == nil {
							anc = ancestorsOf(baseCtx, opID)
						}
						ov, os, oerr := evalOverlay(t, baseCtx, baseRanks, anc,
							opID, dim, n, cluster, est, baseLat)
						if (cerr == nil) != (oerr == nil) {
							t.Fatalf("op %d %s n=%d: clone err %v, overlay err %v",
								opID, dim, n, cerr, oerr)
						}
						if cerr != nil {
							continue
						}
						tested++
						compareCandidateSchedules(t, ov, os, cs, opID, dim, n)
						releaseSchedule(cs)
						releaseSchedule(os)
					}
				}
			}
			if tested == 0 {
				t.Fatalf("%s: no candidate was legal; property untested", spec.Name)
			}
		})
	}
}

func compareCandidateSchedules(t *testing.T, ov *graph.SplitOverlay,
	os, cs *Schedule, opID int, dim graph.SplitDim, n int) {
	t.Helper()
	if os.Makespan != cs.Makespan {
		t.Fatalf("op %d %s n=%d: makespan overlay %v, clone %v",
			opID, dim, n, os.Makespan, cs.Makespan)
	}
	dead := ov.Target().ID
	for id := 0; id < ov.NumOps(); id++ {
		if id == dead {
			continue
		}
		cid := ov.CloneID(id)
		if os.Placement[id] != cs.Placement[cid] {
			t.Fatalf("op %d %s n=%d: placement of %q: overlay dev %d, clone dev %d",
				opID, dim, n, ov.Op(id).Name, os.Placement[id], cs.Placement[cid])
		}
		if os.Start[id] != cs.Start[cid] || os.Finish[id] != cs.Finish[cid] {
			t.Fatalf("op %d %s n=%d: timing of %q: overlay [%v,%v], clone [%v,%v]",
				opID, dim, n, ov.Op(id).Name,
				os.Start[id], os.Finish[id], cs.Start[cid], cs.Finish[cid])
		}
	}
	// The execution order must match once the tombstone is dropped: live
	// overlay ops mapped through CloneID reproduce the clone order exactly
	// (which also pins the relative priorities of every live op).
	pos := 0
	for _, id := range os.Order {
		if id == dead {
			continue
		}
		if want := cs.Order[pos]; ov.CloneID(id) != want {
			t.Fatalf("op %d %s n=%d: order position %d: overlay op %d (-> %d), clone op %d",
				opID, dim, n, pos, id, ov.CloneID(id), want)
		}
		pos++
	}
	if pos != len(cs.Order) {
		t.Fatalf("op %d %s n=%d: live order length %d, clone %d",
			opID, dim, n, pos, len(cs.Order))
	}
}

// TestOSDPOSIncrementalEquivalence is the end-to-end guarantee: overlays
// and bound-based pruning are pure accelerations. Every combination of
// {incremental, clone} x {pruning, no pruning} x worker count must return
// the identical strategy — split list, makespan, placement, order — and
// pruning must be inert on the accepted split list while actually firing
// (Pruned > 0 somewhere across the catalog).
func TestOSDPOSIncrementalEquivalence(t *testing.T) {
	const gpus = 4
	cluster, err := device.SingleServer(gpus)
	if err != nil {
		t.Fatal(err)
	}
	oracle := kernels.NewDefaultOracle(cluster)
	catalog := models.Catalog()
	if testing.Short() {
		catalog = catalog[:3]
	}
	totalPruned := 0
	for _, spec := range catalog {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m, err := spec.Build(4)
			if err != nil {
				t.Fatal(err)
			}
			g, err := graph.BuildDataParallel(m, gpus)
			if err != nil {
				t.Fatal(err)
			}
			base := Options{MaxSplitOps: 2, MaxSyncGroups: 2}

			type variant struct {
				name string
				opts Options
			}
			ref := base
			ref.DisableIncremental = true
			ref.DisablePruning = true
			ref.Workers = 1
			variants := []variant{
				{"clone/noprune/w8", with(base, true, true, 8)},
				{"clone/prune/w1", with(base, true, false, 1)},
				{"overlay/noprune/w1", with(base, false, true, 1)},
				{"overlay/prune/w1", with(base, false, false, 1)},
				{"overlay/prune/w8", with(base, false, false, 8)},
			}
			want, err := OSDPOS(g, cluster, oracle, ref)
			if err != nil {
				t.Fatalf("reference OSDPOS: %v", err)
			}
			if want.Pruned != 0 {
				t.Fatalf("pruning disabled but Pruned=%d", want.Pruned)
			}
			for _, v := range variants {
				got, err := OSDPOS(g, cluster, oracle, v.opts)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if len(got.Splits) != len(want.Splits) {
					t.Fatalf("%s: split list %v, want %v", v.name, got.Splits, want.Splits)
				}
				for i := range want.Splits {
					if got.Splits[i] != want.Splits[i] {
						t.Fatalf("%s: split %d is %v, want %v",
							v.name, i, got.Splits[i], want.Splits[i])
					}
				}
				if got.Schedule.Makespan != want.Schedule.Makespan {
					t.Errorf("%s: makespan %v, want %v",
						v.name, got.Schedule.Makespan, want.Schedule.Makespan)
				}
				if !equalInts(got.Schedule.Placement, want.Schedule.Placement) {
					t.Errorf("%s: placements differ", v.name)
				}
				if !equalInts(got.Schedule.Order, want.Schedule.Order) {
					t.Errorf("%s: orders differ", v.name)
				}
				if !equalInts(got.Schedule.Priorities, want.Schedule.Priorities) {
					t.Errorf("%s: priorities differ", v.name)
				}
				if v.opts.DisablePruning {
					if got.Pruned != 0 {
						t.Errorf("%s: pruning disabled but Pruned=%d", v.name, got.Pruned)
					}
					if got.Evaluated != want.Evaluated {
						t.Errorf("%s: Evaluated=%d, reference %d",
							v.name, got.Evaluated, want.Evaluated)
					}
				} else {
					if got.Evaluated > want.Evaluated {
						t.Errorf("%s: Evaluated=%d exceeds unpruned Evaluated=%d",
							v.name, got.Evaluated, want.Evaluated)
					}
					if v.opts.Workers <= 1 && got.Evaluated+got.Pruned > want.Evaluated {
						// The sequential static bound only ever aborts
						// candidates the unpruned pass would have counted.
						// The live bound of the concurrent path can also
						// abort would-be-infeasible candidates mid-run, so
						// the sum is not comparable there.
						t.Errorf("%s: Evaluated+Pruned=%d exceeds unpruned Evaluated=%d",
							v.name, got.Evaluated+got.Pruned, want.Evaluated)
					}
					totalPruned += got.Pruned
				}
			}
		})
	}
	if totalPruned == 0 {
		t.Error("bound-based pruning never fired across the catalog")
	}
}

func with(o Options, clone, noprune bool, workers int) Options {
	o.DisableIncremental = clone
	o.DisablePruning = noprune
	o.Workers = workers
	return o
}

// TestRestMinIsValidLowerBound checks the pruning bound's soundness
// directly on scheduled graphs: for every op, the exit finish time is at
// least the op's finish plus RestMin — the inequality that makes pruning
// exact (a candidate aborted at Finish+RestMin >= bound could never have
// completed below the bound).
func TestRestMinIsValidLowerBound(t *testing.T) {
	cluster, err := device.SingleServer(3)
	if err != nil {
		t.Fatal(err)
	}
	est := kernels.NewDefaultOracle(cluster)
	for _, spec := range models.Catalog() {
		g, err := spec.Build(2)
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := contextFor(g)
		if err != nil {
			t.Fatal(err)
		}
		lat := latticeFor(ctx, cluster, est, Options{})
		ranks := computeRanksCtx(ctx, lat)
		sched, err := dposCtx(ctx, cluster, lat, Options{}, ranks, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < g.NumOps(); id++ {
			if lb := sched.Finish[id] + ranks.RestMin[id]; lb > sched.Makespan {
				t.Fatalf("%s: op %q violates bound: finish %v + restMin %v > makespan %v",
					spec.Name, g.Op(id).Name, sched.Finish[id], ranks.RestMin[id], sched.Makespan)
			}
		}
		releaseSchedule(sched)
		releaseRanks(ranks)
	}
}

// TestDPOSCtxPrunes pins the errPruned contract: with a bound at or below
// the achievable makespan the run aborts with errPruned, and with a bound
// above it the schedule completes untouched.
func TestDPOSCtxPrunes(t *testing.T) {
	g, est := diamond(t)
	c := clusterN(t, 2)
	ctx, err := contextFor(g)
	if err != nil {
		t.Fatal(err)
	}
	lat := latticeFor(ctx, c, est, Options{})
	ranks := computeRanksCtx(ctx, lat)
	defer releaseRanks(ranks)

	full, err := dposCtx(ctx, c, lat, Options{}, ranks, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := full.Makespan
	releaseSchedule(full)

	if _, err := dposCtx(ctx, c, lat, Options{}, ranks, time.Nanosecond, nil); !errors.Is(err, errPruned) {
		t.Fatalf("tiny bound: err %v, want errPruned", err)
	}
	if _, err := dposCtx(ctx, c, lat, Options{}, ranks, want, nil); !errors.Is(err, errPruned) {
		t.Fatalf("bound == achievable makespan must prune (strict improvement required), got %v", err)
	}
	s, err := dposCtx(ctx, c, lat, Options{}, ranks, want+1, nil)
	if err != nil {
		t.Fatalf("loose bound: %v", err)
	}
	if s.Makespan != want {
		t.Fatalf("loose bound changed makespan: %v, want %v", s.Makespan, want)
	}
	releaseSchedule(s)
}
