#!/bin/sh
# check.sh — the repo's verification tiers (see ROADMAP.md).
#
#   tier 1: build + full test suite
#   tier 2: vet + race detector over the short suite (the parallel strategy
#           calculator and the cost-model snapshots must hold under -race)
#   bench:  opt-in perf gate — scripts/bench.sh, fails on >10% regression of
#           the OS-DPOS headline benchmark vs scripts/bench_baseline.json
#
# Usage: scripts/check.sh [1|2|bench]   (no argument = tiers 1 and 2)
set -eu
cd "$(dirname "$0")/.."

tier="${1:-all}"

if [ "$tier" = "1" ] || [ "$tier" = "all" ]; then
	echo "== tier 1: go build ./... && go test ./..."
	go build ./...
	go test ./...
fi

if [ "$tier" = "2" ] || [ "$tier" = "all" ]; then
	echo "== tier 2: go vet ./... && go test -race -short ./..."
	go vet ./...
	go test -race -short ./...
fi

# Benchmarks are noisy on shared machines, so the perf gate never runs by
# default; opt in with `scripts/check.sh bench`.
if [ "$tier" = "bench" ]; then
	sh scripts/bench.sh
fi

echo "OK"
