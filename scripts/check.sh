#!/bin/sh
# check.sh — the repo's verification tiers (see ROADMAP.md).
#
#   tier 1: build + full test suite
#   tier 2: vet + race detector over the short suite (the parallel strategy
#           calculator and the cost-model snapshots must hold under -race)
#
# Usage: scripts/check.sh [1|2]   (no argument = both tiers)
set -eu
cd "$(dirname "$0")/.."

tier="${1:-all}"

if [ "$tier" = "1" ] || [ "$tier" = "all" ]; then
	echo "== tier 1: go build ./... && go test ./..."
	go build ./...
	go test ./...
fi

if [ "$tier" = "2" ] || [ "$tier" = "all" ]; then
	echo "== tier 2: go vet ./... && go test -race -short ./..."
	go vet ./...
	go test -race -short ./...
fi

echo "OK"
