#!/bin/sh
# check.sh — the repo's verification tiers (see ROADMAP.md).
#
#   tier 1: gofmt gate + build + full test suite + a 1-iteration bench
#           smoke so the bench harness itself cannot silently rot between
#           opt-in bench runs (no timing gate — it only has to run)
#   tier 2: vet + race detector over the short suite (the parallel strategy
#           calculator and the cost-model snapshots must hold under -race)
#   smoke:  CLI strategy-artifact round trip — `fastt compute` writes an
#           artifact, `fastt -strategy` reloads and executes it, and the two
#           canonical artifact-exec lines must match byte for byte
#   fuzz:   10s fuzz smoke per decoder (strategy/graph/cost JSON) on top of
#           replaying the committed corpora under testdata/fuzz/
#   cover:  coverage gate — total statement coverage of ./internal/... must
#           not drop below scripts/coverage_baseline.txt
#   bench:  opt-in perf gate — scripts/bench.sh, fails on >10% regression of
#           the OS-DPOS headline benchmark vs scripts/bench_baseline.json
#
# Usage: scripts/check.sh [1|2|smoke|fuzz|cover|bench]
#        (no argument = 1, 2, smoke, fuzz and cover)
set -eu
cd "$(dirname "$0")/.."

tier="${1:-all}"

if [ "$tier" = "1" ] || [ "$tier" = "all" ]; then
	echo "== tier 1: gofmt -l . && go build ./... && go test ./..."
	unformatted="$(gofmt -l .)"
	if [ -n "$unformatted" ]; then
		echo "gofmt needed on:" >&2
		echo "$unformatted" >&2
		exit 1
	fi
	go build ./...
	go test ./...
	echo "== tier 1: bench smoke (BenchmarkDPOSThroughput, 1 iteration)"
	go test -run '^$' -bench BenchmarkDPOSThroughput -benchtime 1x .
fi

if [ "$tier" = "2" ] || [ "$tier" = "all" ]; then
	echo "== tier 2: go vet ./... && go test -race -short ./..."
	go vet ./...
	go test -race -short ./...
fi

if [ "$tier" = "smoke" ] || [ "$tier" = "all" ]; then
	echo "== smoke: fastt compute -> fastt -strategy round trip"
	tmp="$(mktemp -d)"
	trap 'rm -rf "$tmp"' EXIT
	go build -o "$tmp/fastt" ./cmd/fastt
	"$tmp/fastt" compute -model MLP -gpus 2 -out "$tmp/s.json" -seed 7 -iters 2 | tee "$tmp/compute.out"
	"$tmp/fastt" -model MLP -gpus 2 -strategy "$tmp/s.json" -seed 7 -iters 2 | tee "$tmp/deploy.out"
	grep '^artifact-exec:' "$tmp/compute.out" > "$tmp/compute.line"
	grep '^artifact-exec:' "$tmp/deploy.out" > "$tmp/deploy.line"
	if ! cmp -s "$tmp/compute.line" "$tmp/deploy.line"; then
		echo "strategy artifact did not replay identically:" >&2
		cat "$tmp/compute.line" "$tmp/deploy.line" >&2
		exit 1
	fi
fi

if [ "$tier" = "fuzz" ] || [ "$tier" = "all" ]; then
	echo "== fuzz: 10s smoke per JSON decoder"
	go test ./internal/strategy/ -fuzz '^FuzzReadJSON$' -fuzztime 10s
	go test ./internal/graph/ -fuzz '^FuzzReadJSON$' -fuzztime 10s
	go test ./internal/cost/ -fuzz '^FuzzModelReadJSON$' -fuzztime 10s
fi

if [ "$tier" = "cover" ] || [ "$tier" = "all" ]; then
	echo "== cover: total ./internal/... coverage vs scripts/coverage_baseline.txt"
	covtmp="$(mktemp -d)"
	go test -coverprofile="$covtmp/cover.out" ./internal/... > /dev/null
	total="$(go tool cover -func="$covtmp/cover.out" | awk 'END { sub(/%/, "", $NF); print $NF }')"
	baseline="$(cat scripts/coverage_baseline.txt)"
	rm -rf "$covtmp"
	echo "total coverage: ${total}% (baseline ${baseline}%)"
	if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t < b) }'; then
		echo "coverage dropped below baseline" >&2
		exit 1
	fi
fi

# Benchmarks are noisy on shared machines, so the perf gate never runs by
# default; opt in with `scripts/check.sh bench`.
if [ "$tier" = "bench" ]; then
	sh scripts/bench.sh
fi

echo "OK"
