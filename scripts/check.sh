#!/bin/sh
# check.sh — the repo's verification tiers (see ROADMAP.md).
#
#   tier 1: gofmt gate + build + full test suite + a 1-iteration bench
#           smoke so the bench harness itself cannot silently rot between
#           opt-in bench runs (no timing gate — it only has to run)
#   tier 2: vet + race detector over the short suite (the parallel strategy
#           calculator and the cost-model snapshots must hold under -race)
#   smoke:  CLI strategy-artifact round trip — `fastt compute` writes an
#           artifact, `fastt -strategy` reloads and executes it, and the two
#           canonical artifact-exec lines must match byte for byte — plus the
#           elastic loop: examples/elastic must lose a device, accept a
#           joiner, recompute, and resume
#   serve:  strategy-service round trip — start `fastt serve` on an
#           ephemeral port, run the loadgen smoke (cold compute, warm
#           byte-identical hit, 64-way coalesced herd) and a short loadgen
#           bench sanity pass (no timing gate — the perf gate lives in
#           scripts/bench.sh)
#   fuzz:   10s fuzz smoke per decoder (strategy/graph/cost/cluster-spec
#           JSON) on top of replaying the committed corpora under
#           testdata/fuzz/
#   gap:    optimality-gap smoke — `benchtab -what gap` on two small models
#           must emit a Theorem-1 "ok" verdict for every row, and two runs
#           must be byte-identical (the bound solver and the gap table are
#           deterministic by construction)
#   cover:  coverage gate — total statement coverage of ./internal/... must
#           not drop below scripts/coverage_baseline.txt
#   bench:  opt-in perf gate — scripts/bench.sh, fails on >10% regression of
#           the OS-DPOS headline benchmark vs scripts/bench_baseline.json
#
# Usage: scripts/check.sh [1|2|smoke|serve|fuzz|gap|cover|bench]
#        (no argument = 1, 2, smoke, serve, fuzz, gap and cover)
set -eu
cd "$(dirname "$0")/.."

tier="${1:-all}"

# One cleanup for every tier: temp dirs accumulate in CLEAN_DIRS, a live
# serve daemon's pid in SERVE_PID.
CLEAN_DIRS=""
SERVE_PID=""
cleanup() {
	if [ -n "$SERVE_PID" ]; then
		kill "$SERVE_PID" 2>/dev/null || true
	fi
	if [ -n "$CLEAN_DIRS" ]; then
		# shellcheck disable=SC2086 # word splitting is the point
		rm -rf $CLEAN_DIRS
	fi
}
trap cleanup EXIT

if [ "$tier" = "1" ] || [ "$tier" = "all" ]; then
	echo "== tier 1: gofmt -l . && go build ./... && go test ./..."
	unformatted="$(gofmt -l .)"
	if [ -n "$unformatted" ]; then
		echo "gofmt needed on:" >&2
		echo "$unformatted" >&2
		exit 1
	fi
	go build ./...
	go test ./...
	echo "== tier 1: bench smoke (BenchmarkDPOSThroughput, 1 iteration)"
	go test -run '^$' -bench BenchmarkDPOSThroughput -benchtime 1x .
fi

if [ "$tier" = "2" ] || [ "$tier" = "all" ]; then
	echo "== tier 2: go vet ./... && go test -race -short ./..."
	go vet ./...
	go test -race -short ./...
fi

if [ "$tier" = "smoke" ] || [ "$tier" = "all" ]; then
	echo "== smoke: fastt compute -> fastt -strategy round trip"
	tmp="$(mktemp -d)"
	CLEAN_DIRS="$CLEAN_DIRS $tmp"
	go build -o "$tmp/fastt" ./cmd/fastt
	"$tmp/fastt" compute -model MLP -gpus 2 -out "$tmp/s.json" -seed 7 -iters 2 | tee "$tmp/compute.out"
	"$tmp/fastt" -model MLP -gpus 2 -strategy "$tmp/s.json" -seed 7 -iters 2 | tee "$tmp/deploy.out"
	grep '^artifact-exec:' "$tmp/compute.out" > "$tmp/compute.line"
	grep '^artifact-exec:' "$tmp/deploy.out" > "$tmp/deploy.line"
	if ! cmp -s "$tmp/compute.line" "$tmp/deploy.line"; then
		echo "strategy artifact did not replay identically:" >&2
		cat "$tmp/compute.line" "$tmp/deploy.line" >&2
		exit 1
	fi
	echo "== smoke: warm-started recompute (compute -> shrink cluster -> compute -seed-strategy)"
	# The recovery shape end to end: a 4-GPU strategy seeds the recompute of
	# the same 4-replica graph on a 3-GPU cluster (-replicas pins the graph
	# so the fingerprints match). The seeded run must report a nonzero seed
	# bound and at least one seeded round; runCompute itself reloads,
	# validates and executes the written artifact before exiting 0.
	"$tmp/fastt" compute -model MLP -gpus 4 -out "$tmp/warm_seed.json" -seed 7 -iters 2 > "$tmp/warm_cold.out"
	"$tmp/fastt" compute -model MLP -gpus 3 -replicas 4 -seed-strategy "$tmp/warm_seed.json" \
		-out "$tmp/warm_re.json" -seed 7 -iters 2 | tee "$tmp/warm.out"
	if ! grep -q '^warm start' "$tmp/warm.out"; then
		echo "seeded compute did not report a warm start:" >&2
		cat "$tmp/warm.out" >&2
		exit 1
	fi
	if grep -q 'seed bound 0s' "$tmp/warm.out" || grep -q 'seeded 0 round' "$tmp/warm.out"; then
		echo "seeded compute reported an empty warm start:" >&2
		grep '^warm start' "$tmp/warm.out" >&2
		exit 1
	fi
	echo "== smoke: elastic loop (device loss -> join -> recompute -> resume)"
	go run ./examples/elastic > "$tmp/elastic.out"
	for want in 'degraded   : 3 survivor' 'joined     : ' 'recomputed : true' 'resumed    : '; do
		if ! grep -qF "$want" "$tmp/elastic.out"; then
			echo "elastic example output missing \"$want\":" >&2
			cat "$tmp/elastic.out" >&2
			exit 1
		fi
	done
fi

if [ "$tier" = "serve" ] || [ "$tier" = "all" ]; then
	echo "== serve: fastt serve + loadgen smoke and bench sanity"
	stmp="$(mktemp -d)"
	CLEAN_DIRS="$CLEAN_DIRS $stmp"
	go build -o "$stmp/fastt" ./cmd/fastt
	go build -o "$stmp/loadgen" ./cmd/loadgen
	# -search-delay widens the coalescing window so the loadgen herd can
	# observe in-flight joins from outside the process (see cmd/loadgen).
	"$stmp/fastt" serve -addr 127.0.0.1:0 -search-delay 100ms \
		>"$stmp/serve.log" 2>&1 &
	SERVE_PID=$!
	addr=""
	for _ in $(seq 1 50); do
		addr="$(sed -n 's/^fastt serve: listening on //p' "$stmp/serve.log")"
		[ -n "$addr" ] && break
		sleep 0.1
	done
	if [ -z "$addr" ]; then
		echo "fastt serve failed to start:" >&2
		cat "$stmp/serve.log" >&2
		exit 1
	fi
	"$stmp/loadgen" -addr "http://$addr" -mode smoke
	"$stmp/loadgen" -addr "http://$addr" -mode bench -duration 1s
	kill "$SERVE_PID"
	wait "$SERVE_PID" 2>/dev/null || true
	SERVE_PID=""
fi

if [ "$tier" = "fuzz" ] || [ "$tier" = "all" ]; then
	echo "== fuzz: 10s smoke per JSON decoder"
	go test ./internal/strategy/ -fuzz '^FuzzReadJSON$' -fuzztime 10s
	go test ./internal/graph/ -fuzz '^FuzzReadJSON$' -fuzztime 10s
	go test ./internal/cost/ -fuzz '^FuzzModelReadJSON$' -fuzztime 10s
	go test ./internal/device/ -fuzz '^FuzzReadSpec$' -fuzztime 10s
fi

if [ "$tier" = "gap" ] || [ "$tier" = "all" ]; then
	echo "== gap: benchtab -what gap smoke (LeNet, AlexNet) + determinism"
	gtmp="$(mktemp -d)"
	CLEAN_DIRS="$CLEAN_DIRS $gtmp"
	go build -o "$gtmp/benchtab" ./cmd/benchtab
	"$gtmp/benchtab" -what gap -models LeNet,AlexNet | tee "$gtmp/gap1.out"
	# 2 models x {2,4,8} GPUs: every row must close with the Theorem-1 "ok".
	okrows="$(grep -c ' ok$' "$gtmp/gap1.out" || true)"
	if [ "$okrows" != 6 ]; then
		echo "expected 6 Theorem-1 'ok' rows, got $okrows:" >&2
		cat "$gtmp/gap1.out" >&2
		exit 1
	fi
	if grep -q 'VIOLATED' "$gtmp/gap1.out"; then
		echo "gap table reports a Theorem-1 violation:" >&2
		cat "$gtmp/gap1.out" >&2
		exit 1
	fi
	"$gtmp/benchtab" -what gap -models LeNet,AlexNet > "$gtmp/gap2.out"
	# Strip the trailing "(generated in ...)" wall-time line — the only
	# intentionally varying output — and the rest must match byte for byte.
	grep -v '^(generated in ' "$gtmp/gap1.out" > "$gtmp/gap1.cmp"
	grep -v '^(generated in ' "$gtmp/gap2.out" > "$gtmp/gap2.cmp"
	if ! cmp -s "$gtmp/gap1.cmp" "$gtmp/gap2.cmp"; then
		echo "gap table not deterministic across reruns:" >&2
		diff "$gtmp/gap1.cmp" "$gtmp/gap2.cmp" >&2 || true
		exit 1
	fi
fi

if [ "$tier" = "cover" ] || [ "$tier" = "all" ]; then
	echo "== cover: total ./internal/... coverage vs scripts/coverage_baseline.txt"
	covtmp="$(mktemp -d)"
	go test -coverprofile="$covtmp/cover.out" ./internal/... > /dev/null
	total="$(go tool cover -func="$covtmp/cover.out" | awk 'END { sub(/%/, "", $NF); print $NF }')"
	baseline="$(cat scripts/coverage_baseline.txt)"
	rm -rf "$covtmp"
	echo "total coverage: ${total}% (baseline ${baseline}%)"
	if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t < b) }'; then
		echo "coverage dropped below baseline" >&2
		exit 1
	fi
fi

# Benchmarks are noisy on shared machines, so the perf gate never runs by
# default; opt in with `scripts/check.sh bench`.
if [ "$tier" = "bench" ]; then
	sh scripts/bench.sh
fi

echo "OK"
