#!/bin/sh
# bench.sh — OS-DPOS benchmark gate (see EXPERIMENTS.md).
#
# Runs BenchmarkOSDPOSParallel and BenchmarkDPOSThroughput with -count=5
# -benchmem, writes the best (minimum) ns/op, B/op, and allocs/op per
# benchmark — plus the derived parallel_efficiency_8w of the Transformer
# search, (workers=1 time / workers=8 time) / 8 — to BENCH_osdpos.json,
# and gates against the checked-in baseline scripts/bench_baseline.json:
#
#   1. the headline configuration — Transformer, 8 GPUs, workers=1, the
#      single-threaded incremental candidate search — must not regress
#      more than 10% in time;
#   2. no benchmark with baseline allocation entries may regress more than
#      10% in B/op or allocs/op. The baseline deliberately carries alloc
#      entries only for the deterministic sequential paths (workers=1 and
#      DPOSThroughput): with workers > 1, speculative rounds allocate a
#      timing-dependent amount before the commit point discards them, so
#      parallel alloc minima are not stable enough to gate;
#   3. DPOSThroughput must not regress more than 10% against the recorded
#      baseline. (The original form of this gate demanded >=1.5x over the
#      pre-flattening baseline; that target was met and the baseline has
#      since been refreshed, so the gate now guards the won ground.)
#   4a. warm-start ratios, derived from BenchmarkWarmstartRecompute
#      (Transformer@8GPU, workers=1, cold vs Options.Seed):
#      warmstart_recompute_speedup — same-cluster recompute, where the
#      seed wins and the walk stops after one round — must reach >= 1.5x
#      (measured ~2x on the 1-core container); and
#      warmstart_shrink_speedup — recompute on 7 survivors, where a
#      candidate beats the seed in round one so the seeded walk is
#      byte-identical to the cold one from the first commit on — must
#      stay >= 0.80x, a non-regression floor: seeding must never
#      meaningfully slow fault recovery. The shrink ratio is structurally
#      bounded near 1x — the only differential is completions converted
#      to prunes minus one seed evaluation — see EXPERIMENTS.md,
#      "Warm-started recompute";
#   4. parallel_efficiency_8w must reach the core-scaled target
#      0.5 * min(ncpu, 8) / 8 — i.e. the ISSUE 6 target of >= 0.5 (>=4x
#      at 8 workers) on any >=8-core machine — and must not drop more
#      than 20% below the recorded baseline efficiency. The core scaling
#      exists because worker scaling is physically bounded by the host:
#      a GOMAXPROCS=1 container runs the 8-worker search on one core, so
#      its best possible efficiency is ~1/8 no matter how the search is
#      structured (see EXPERIMENTS.md, "Parallel search scaling"). The
#      host's core count is recorded as "ncpu" in BENCH_osdpos.json so a
#      recorded efficiency is always read against the hardware that
#      produced it.
#
# The script also load-tests the strategy service (see DESIGN.md,
# "Strategy service"): it starts `fastt serve` on an ephemeral port, runs
# cmd/loadgen against a warmed cache for ~3s, and writes req/s and latency
# percentiles to BENCH_serve.json. Gates:
#
#   5. the warm-cache service must sustain >= 10,000 req/s with p99 < 5ms
#      (the ISSUE 7 acceptance floor, absolute — it holds even on a
#      1-core container because warm requests never search);
#   6. when scripts/bench_serve_baseline.json exists and was recorded on a
#      host with the same core count, req/s must not drop more than 33%
#      below it and p99 must not rise more than 2x above it (loose bands:
#      single short windows are noisy; gate 5 is the binding floor). When
#      the baseline is missing the run records BENCH_serve.json and notes
#      record-only mode instead of failing, so the gate bootstraps cleanly.
#
# Usage: scripts/bench.sh            run, write BENCH_osdpos.json +
#                                    BENCH_serve.json, gate
#        scripts/bench.sh --update   also rewrite both baseline files
set -eu
cd "$(dirname "$0")/.."

KEY="BenchmarkOSDPOSParallel/Transformer/workers=1"
KEY8="BenchmarkOSDPOSParallel/Transformer/workers=8"
KEYTP="BenchmarkDPOSThroughput"
KEYWC="BenchmarkWarmstartRecompute/recompute/cold"
KEYWS="BenchmarkWarmstartRecompute/recompute/seeded"
KEYSC="BenchmarkWarmstartRecompute/shrink/cold"
KEYSS="BenchmarkWarmstartRecompute/shrink/seeded"
BASELINE="scripts/bench_baseline.json"
OUT="BENCH_osdpos.json"
SERVE_BASELINE="scripts/bench_serve_baseline.json"
SERVE_OUT="BENCH_serve.json"
NCPU=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
RAW="$(mktemp)"
STMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
	if [ -n "$SERVE_PID" ]; then
		kill "$SERVE_PID" 2>/dev/null || true
	fi
	rm -rf "$RAW" "$STMP"
}
trap cleanup EXIT

echo "== bench: go test -bench 'OSDPOSParallel|DPOSThroughput|WarmstartRecompute' -count=5 -benchmem"
go test -run '^$' -bench 'BenchmarkOSDPOSParallel|BenchmarkDPOSThroughput|BenchmarkWarmstartRecompute' \
	-count=5 -benchtime 1x -benchmem . | tee "$RAW"

# Keep the minimum per benchmark and metric: least-noise estimate of true
# cost. Alloc stats are paired with their time entry under ":B/op" and
# ":allocs/op" key suffixes so the flat-key gate below stays trivial.
awk -v k1="$KEY" -v k8="$KEY8" -v wc="$KEYWC" -v ws="$KEYWS" \
	-v sc="$KEYSC" -v ss="$KEYSS" -v ncpu="$NCPU" '
/^Benchmark/ && $4 == "ns/op" {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		key = ""
		if (unit == "ns/op") key = name
		else if (unit == "B/op") key = name ":B/op"
		else if (unit == "allocs/op") key = name ":allocs/op"
		if (key == "") continue
		if (!(key in best) || $i + 0 < best[key]) best[key] = $i + 0
	}
}
END {
	n = 0
	for (key in best) order[n++] = key
	# deterministic output: simple insertion sort by key
	for (i = 1; i < n; i++) {
		v = order[i]
		for (j = i - 1; j >= 0 && order[j] > v; j--) order[j+1] = order[j]
		order[j+1] = v
	}
	printf "{\n"
	for (i = 0; i < n; i++)
		printf "  \"%s\": %d,\n", order[i], best[order[i]]
	eff = 0
	if ((k1 in best) && (k8 in best) && best[k8] > 0)
		eff = (best[k1] / best[k8]) / 8
	wrs = 0
	if ((wc in best) && (ws in best) && best[ws] > 0)
		wrs = best[wc] / best[ws]
	wss = 0
	if ((sc in best) && (ss in best) && best[ss] > 0)
		wss = best[sc] / best[ss]
	printf "  \"ncpu\": %d,\n", ncpu
	printf "  \"warmstart_recompute_speedup\": %.4f,\n", wrs
	printf "  \"warmstart_shrink_speedup\": %.4f,\n", wss
	printf "  \"parallel_efficiency_8w\": %.4f\n", eff
	printf "}\n"
}' "$RAW" >"$OUT"
echo "== wrote $OUT"

# jget FILE KEY -> value, empty when absent.
jget() {
	awk -v key="\"$2\":" '$1 == key {gsub(/,/, "", $2); print $2}' "$1"
}

cur=$(jget "$OUT" "$KEY")
if [ -z "$cur" ]; then
	echo "bench.sh: headline benchmark $KEY missing from results" >&2
	exit 1
fi

# Serve throughput: warmed cache, fingerprint-only requests (see header
# gates 5 and 6). 8 workers per core keeps queueing delay — not service
# capacity — from dominating the tail on small machines.
echo "== bench: fastt serve warm-cache throughput (loadgen, 3s)"
go build -o "$STMP/fastt" ./cmd/fastt
go build -o "$STMP/loadgen" ./cmd/loadgen
"$STMP/fastt" serve -addr 127.0.0.1:0 >"$STMP/serve.log" 2>&1 &
SERVE_PID=$!
saddr=""
for _ in $(seq 1 50); do
	saddr="$(sed -n 's/^fastt serve: listening on //p' "$STMP/serve.log")"
	[ -n "$saddr" ] && break
	sleep 0.1
done
if [ -z "$saddr" ]; then
	echo "bench.sh: fastt serve failed to start:" >&2
	cat "$STMP/serve.log" >&2
	exit 1
fi
"$STMP/loadgen" -addr "http://$saddr" -mode bench -duration 3s -out "$SERVE_OUT"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "== wrote $SERVE_OUT"

if [ "${1:-}" = "--update" ]; then
	# Keep alloc entries only for the deterministic sequential paths (see
	# header note on gate 2). Warmstart entries are gated by their derived
	# ratios (gate 4a), not by per-run alloc minima.
	awk '(!(/workers=[0-9]+/ && /(B\/op|allocs\/op)/) || /workers=1[^0-9]/) &&
		!(/Warmstart/ && /(B\/op|allocs\/op)/)' \
		"$OUT" >"$BASELINE"
	cp "$SERVE_OUT" "$SERVE_BASELINE"
	echo "== baseline updated: $KEY = $cur ns/op; serve baseline refreshed"
	exit 0
fi

base=$(jget "$BASELINE" "$KEY")
if [ -z "$base" ]; then
	echo "bench.sh: $KEY missing from $BASELINE (run scripts/bench.sh --update)" >&2
	exit 1
fi

fail=0

# Gate 1: headline time regression. Fail when cur > base * 1.10.
if [ "$cur" -gt $((base + base / 10)) ]; then
	echo "FAIL: $KEY regressed: $cur ns/op vs baseline $base ns/op (>10%)" >&2
	fail=1
else
	echo "OK: $KEY = $cur ns/op (baseline $base ns/op)"
fi

# Gate 2: allocation regressions, for every benchmark the baseline has
# alloc entries for. Fail when cur > base * 1.10.
for suffix in ":B/op" ":allocs/op"; do
	awk -v sfx="$suffix" 'index($1, "\"Benchmark") == 1 && index($1, sfx) {
		key = $1; gsub(/^"|":$/, "", key); print key
	}' "$BASELINE" | while IFS= read -r akey; do
		ab=$(jget "$BASELINE" "$akey")
		ac=$(jget "$OUT" "$akey")
		if [ -z "$ac" ]; then
			echo "FAIL: $akey missing from results" >&2
			exit 1
		fi
		if [ "$ac" -gt $((ab + ab / 10)) ]; then
			echo "FAIL: $akey regressed: $ac vs baseline $ab (>10%)" >&2
			exit 1
		fi
	done || fail=1
done
[ "$fail" -eq 1 ] || echo "OK: allocation stats within 10% of baseline"

# Gate 3: DPOS throughput must not regress more than 10% (see header).
tpb=$(jget "$BASELINE" "$KEYTP")
tpc=$(jget "$OUT" "$KEYTP")
if [ -n "$tpb" ] && [ -n "$tpc" ]; then
	if [ "$tpc" -gt $((tpb + tpb / 10)) ]; then
		echo "FAIL: $KEYTP regressed: $tpc ns/op vs baseline $tpb ns/op (>10%)" >&2
		fail=1
	else
		echo "OK: $KEYTP = $tpc ns/op (baseline $tpb ns/op)"
	fi
fi

# Gate 4a: warm-start ratios (see header). Absolute thresholds, no
# baseline entries needed: the same-cluster recompute must reach the
# 1.5x target, the shrink recompute must not fall below the 0.80x
# non-regression floor.
wrs=$(jget "$OUT" "warmstart_recompute_speedup")
wss=$(jget "$OUT" "warmstart_shrink_speedup")
if [ -z "$wrs" ] || [ -z "$wss" ]; then
	echo "FAIL: warmstart speedups missing from results" >&2
	fail=1
else
	if awk -v s="$wrs" 'BEGIN { exit !(s + 0 >= 1.5) }'; then
		echo "OK: warmstart_recompute_speedup = ${wrs}x (target >= 1.5x)"
	else
		echo "FAIL: warmstart_recompute_speedup = ${wrs}x below 1.5x target" >&2
		fail=1
	fi
	if awk -v s="$wss" 'BEGIN { exit !(s + 0 >= 0.80) }'; then
		echo "OK: warmstart_shrink_speedup = ${wss}x (floor >= 0.80x)"
	else
		echo "FAIL: warmstart_shrink_speedup = ${wss}x below 0.80x floor" >&2
		fail=1
	fi
fi

# Gate 4: core-scaled parallel efficiency of the 8-worker Transformer
# search (see header): eff >= 0.5 * min(ncpu, 8) / 8, plus no >20%
# regression against the recorded baseline efficiency.
eff=$(jget "$OUT" "parallel_efficiency_8w")
if [ -z "$eff" ]; then
	echo "FAIL: parallel_efficiency_8w missing from results" >&2
	fail=1
else
	target=$(awk -v n="$NCPU" 'BEGIN { if (n > 8) n = 8; printf "%.4f", 0.5 * n / 8 }')
	if awk -v e="$eff" -v t="$target" 'BEGIN { exit !(e + 0 >= t + 0) }'; then
		echo "OK: parallel_efficiency_8w = $eff (target >= $target on $NCPU cores)"
	else
		echo "FAIL: parallel_efficiency_8w = $eff below core-scaled target $target ($NCPU cores)" >&2
		fail=1
	fi
	beff=$(jget "$BASELINE" "parallel_efficiency_8w")
	bncpu=$(jget "$BASELINE" "ncpu")
	if [ -n "$beff" ] && [ "${bncpu:-$NCPU}" = "$NCPU" ]; then
		if awk -v e="$eff" -v b="$beff" 'BEGIN { exit !(e + 0 >= 0.8 * b) }'; then
			echo "OK: parallel_efficiency_8w within 20% of baseline $beff"
		else
			echo "FAIL: parallel_efficiency_8w = $eff regressed >20% below baseline $beff" >&2
			fail=1
		fi
	elif [ -n "$beff" ]; then
		echo "note: baseline efficiency $beff was recorded on ${bncpu:-?} cores, this host has $NCPU; skipping the regression check"
	fi
fi

# Gate 5: absolute serve floor — >= 10,000 req/s, p99 < 5ms (see header).
# Values are floats, so comparisons go through awk.
rps=$(jget "$SERVE_OUT" "req_per_sec")
p99=$(jget "$SERVE_OUT" "p99_ns")
srverr=$(jget "$SERVE_OUT" "errors")
if [ -z "$rps" ] || [ -z "$p99" ]; then
	echo "FAIL: req_per_sec/p99_ns missing from $SERVE_OUT" >&2
	fail=1
else
	if awk -v r="$rps" -v p="$p99" -v e="${srverr:-0}" \
		'BEGIN { exit !(r + 0 >= 10000 && p + 0 < 5000000 && e + 0 == 0) }'; then
		echo "OK: serve sustained $rps req/s, p99 ${p99}ns, errors ${srverr:-0}"
	else
		echo "FAIL: serve floor not met: $rps req/s (need >= 10000), p99 ${p99}ns (need < 5000000), errors ${srverr:-0} (need 0)" >&2
		fail=1
	fi
fi

# Gate 6: serve regression vs the recorded baseline, same-core-count hosts
# only. A missing baseline is record-only mode, not a failure.
if [ ! -f "$SERVE_BASELINE" ]; then
	echo "note: $SERVE_BASELINE missing; recorded $SERVE_OUT only (run scripts/bench.sh --update to set the baseline)"
else
	brps=$(jget "$SERVE_BASELINE" "req_per_sec")
	bp99=$(jget "$SERVE_BASELINE" "p99_ns")
	bscpu=$(jget "$SERVE_BASELINE" "ncpu")
	if [ "${bscpu:-$NCPU}" != "$NCPU" ]; then
		echo "note: serve baseline was recorded on ${bscpu:-?} cores, this host has $NCPU; skipping the regression check"
	elif [ -n "$rps" ] && [ -n "$brps" ] && [ -n "$bp99" ]; then
		# Single 3s windows are noisy even after loadgen's warmup phase, so
		# the baseline bands are deliberately loose (1/3 req/s, 2x p99);
		# gate 5's absolute floor is the binding constraint.
		if awk -v r="$rps" -v b="$brps" 'BEGIN { exit !(r + 0 >= 0.67 * b) }'; then
			echo "OK: serve req/s within 33% of baseline $brps"
		else
			echo "FAIL: serve req/s $rps dropped >33% below baseline $brps" >&2
			fail=1
		fi
		if awk -v p="$p99" -v b="$bp99" 'BEGIN { exit !(p + 0 <= 2 * b) }'; then
			echo "OK: serve p99 within 2x of baseline ${bp99}ns"
		else
			echo "FAIL: serve p99 ${p99}ns rose >2x above baseline ${bp99}ns" >&2
			fail=1
		fi
	fi
fi

exit "$fail"
