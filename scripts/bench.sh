#!/bin/sh
# bench.sh — OS-DPOS benchmark gate (see EXPERIMENTS.md).
#
# Runs BenchmarkOSDPOSParallel and BenchmarkDPOSThroughput with -count=5
# -benchmem, writes the best (minimum) ns/op, B/op, and allocs/op per
# benchmark — plus the derived parallel_efficiency_8w of the Transformer
# search, (workers=1 time / workers=8 time) / 8 — to BENCH_osdpos.json,
# and gates against the checked-in baseline scripts/bench_baseline.json:
#
#   1. the headline configuration — Transformer, 8 GPUs, workers=1, the
#      single-threaded incremental candidate search — must not regress
#      more than 10% in time;
#   2. no benchmark with baseline allocation entries may regress more than
#      10% in B/op or allocs/op;
#   3. DPOSThroughput must stay >=1.5x faster than the recorded baseline
#      (the dense-lattice flattening target);
#   4. Transformer workers=8 must stay >=2x faster than the recorded
#      baseline sequential (workers=1) search. Single-core hosts cannot
#      exhibit same-build worker scaling — concurrency adds nothing when
#      GOMAXPROCS=1 — so the parallel gate anchors the 8-worker path to
#      the recorded sequential baseline instead (see EXPERIMENTS.md).
#
# Usage: scripts/bench.sh            run, write BENCH_osdpos.json, gate
#        scripts/bench.sh --update   also rewrite the baseline file
set -eu
cd "$(dirname "$0")/.."

KEY="BenchmarkOSDPOSParallel/Transformer/workers=1"
KEY8="BenchmarkOSDPOSParallel/Transformer/workers=8"
KEYTP="BenchmarkDPOSThroughput"
BASELINE="scripts/bench_baseline.json"
OUT="BENCH_osdpos.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== bench: go test -bench 'OSDPOSParallel|DPOSThroughput' -count=5 -benchmem"
go test -run '^$' -bench 'BenchmarkOSDPOSParallel|BenchmarkDPOSThroughput' \
	-count=5 -benchtime 1x -benchmem . | tee "$RAW"

# Keep the minimum per benchmark and metric: least-noise estimate of true
# cost. Alloc stats are paired with their time entry under ":B/op" and
# ":allocs/op" key suffixes so the flat-key gate below stays trivial.
awk -v k1="$KEY" -v k8="$KEY8" '
/^Benchmark/ && $4 == "ns/op" {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		key = ""
		if (unit == "ns/op") key = name
		else if (unit == "B/op") key = name ":B/op"
		else if (unit == "allocs/op") key = name ":allocs/op"
		if (key == "") continue
		if (!(key in best) || $i + 0 < best[key]) best[key] = $i + 0
	}
}
END {
	n = 0
	for (key in best) order[n++] = key
	# deterministic output: simple insertion sort by key
	for (i = 1; i < n; i++) {
		v = order[i]
		for (j = i - 1; j >= 0 && order[j] > v; j--) order[j+1] = order[j]
		order[j+1] = v
	}
	printf "{\n"
	for (i = 0; i < n; i++)
		printf "  \"%s\": %d,\n", order[i], best[order[i]]
	eff = 0
	if ((k1 in best) && (k8 in best) && best[k8] > 0)
		eff = (best[k1] / best[k8]) / 8
	printf "  \"parallel_efficiency_8w\": %.4f\n", eff
	printf "}\n"
}' "$RAW" >"$OUT"
echo "== wrote $OUT"

# jget FILE KEY -> value, empty when absent.
jget() {
	awk -v key="\"$2\":" '$1 == key {gsub(/,/, "", $2); print $2}' "$1"
}

cur=$(jget "$OUT" "$KEY")
if [ -z "$cur" ]; then
	echo "bench.sh: headline benchmark $KEY missing from results" >&2
	exit 1
fi

if [ "${1:-}" = "--update" ]; then
	cp "$OUT" "$BASELINE"
	echo "== baseline updated: $KEY = $cur ns/op"
	exit 0
fi

base=$(jget "$BASELINE" "$KEY")
if [ -z "$base" ]; then
	echo "bench.sh: $KEY missing from $BASELINE (run scripts/bench.sh --update)" >&2
	exit 1
fi

fail=0

# Gate 1: headline time regression. Fail when cur > base * 1.10.
if [ "$cur" -gt $((base + base / 10)) ]; then
	echo "FAIL: $KEY regressed: $cur ns/op vs baseline $base ns/op (>10%)" >&2
	fail=1
else
	echo "OK: $KEY = $cur ns/op (baseline $base ns/op)"
fi

# Gate 2: allocation regressions, for every benchmark the baseline has
# alloc entries for. Fail when cur > base * 1.10.
for suffix in ":B/op" ":allocs/op"; do
	awk -v sfx="$suffix" 'index($1, "\"Benchmark") == 1 && index($1, sfx) {
		key = $1; gsub(/^"|":$/, "", key); print key
	}' "$BASELINE" | while IFS= read -r akey; do
		ab=$(jget "$BASELINE" "$akey")
		ac=$(jget "$OUT" "$akey")
		if [ -z "$ac" ]; then
			echo "FAIL: $akey missing from results" >&2
			exit 1
		fi
		if [ "$ac" -gt $((ab + ab / 10)) ]; then
			echo "FAIL: $akey regressed: $ac vs baseline $ab (>10%)" >&2
			exit 1
		fi
	done || fail=1
done
[ "$fail" -eq 1 ] || echo "OK: allocation stats within 10% of baseline"

# Gate 3: DPOS throughput must stay >=1.5x faster than the baseline.
tpb=$(jget "$BASELINE" "$KEYTP")
tpc=$(jget "$OUT" "$KEYTP")
if [ -n "$tpb" ] && [ -n "$tpc" ]; then
	if [ $((tpc * 3)) -gt $((tpb * 2)) ]; then
		echo "FAIL: $KEYTP = $tpc ns/op, not >=1.5x faster than baseline $tpb ns/op" >&2
		fail=1
	else
		echo "OK: $KEYTP = $tpc ns/op (>=1.5x faster than baseline $tpb ns/op)"
	fi
fi

# Gate 4: the 8-worker Transformer search must stay >=2x faster than the
# baseline sequential search (see header for why the anchor is the
# baseline, not this run's workers=1).
w8=$(jget "$OUT" "$KEY8")
if [ -n "$w8" ]; then
	if [ $((w8 * 2)) -gt "$base" ]; then
		echo "FAIL: $KEY8 = $w8 ns/op, not >=2x faster than baseline sequential $base ns/op" >&2
		fail=1
	else
		echo "OK: $KEY8 = $w8 ns/op (>=2x faster than baseline sequential $base ns/op)"
	fi
fi

exit "$fail"
