#!/bin/sh
# bench.sh — OS-DPOS benchmark gate (see EXPERIMENTS.md).
#
# Runs BenchmarkOSDPOSParallel and BenchmarkDPOSThroughput with -count=5,
# writes the best (minimum) ns/op per benchmark to BENCH_osdpos.json, and
# fails if the headline configuration — Transformer, 8 GPUs, workers=1,
# i.e. the single-threaded incremental candidate search — regresses more
# than 10% against the checked-in baseline scripts/bench_baseline.json.
#
# Usage: scripts/bench.sh            run, write BENCH_osdpos.json, gate
#        scripts/bench.sh --update   also rewrite the baseline file
set -eu
cd "$(dirname "$0")/.."

KEY="BenchmarkOSDPOSParallel/Transformer/workers=1"
BASELINE="scripts/bench_baseline.json"
OUT="BENCH_osdpos.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== bench: go test -bench 'OSDPOSParallel|DPOSThroughput' -count=5"
go test -run '^$' -bench 'BenchmarkOSDPOSParallel|BenchmarkDPOSThroughput' \
	-count=5 -benchtime 1x . | tee "$RAW"

# Keep the minimum ns/op per benchmark: least-noise estimate of true cost.
awk '
/^Benchmark/ && $4 == "ns/op" {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
	if (!(name in best) || $3 + 0 < best[name]) best[name] = $3 + 0
}
END {
	n = 0
	printf "{\n"
	for (name in best) order[n++] = name
	# deterministic output: simple insertion sort by name
	for (i = 1; i < n; i++) {
		v = order[i]
		for (j = i - 1; j >= 0 && order[j] > v; j--) order[j+1] = order[j]
		order[j+1] = v
	}
	for (i = 0; i < n; i++)
		printf "  \"%s\": %d%s\n", order[i], best[order[i]], (i < n-1 ? "," : "")
	printf "}\n"
}' "$RAW" >"$OUT"
echo "== wrote $OUT"

cur=$(awk -v key="\"$KEY\":" '$1 == key {gsub(/,/, "", $2); print $2}' "$OUT")
if [ -z "$cur" ]; then
	echo "bench.sh: headline benchmark $KEY missing from results" >&2
	exit 1
fi

if [ "${1:-}" = "--update" ]; then
	cp "$OUT" "$BASELINE"
	echo "== baseline updated: $KEY = $cur ns/op"
	exit 0
fi

base=$(awk -v key="\"$KEY\":" '$1 == key {gsub(/,/, "", $2); print $2}' "$BASELINE")
if [ -z "$base" ]; then
	echo "bench.sh: $KEY missing from $BASELINE (run scripts/bench.sh --update)" >&2
	exit 1
fi

# Gate: fail when cur > base * 1.10.
if [ "$cur" -gt $((base + base / 10)) ]; then
	echo "FAIL: $KEY regressed: $cur ns/op vs baseline $base ns/op (>10%)" >&2
	exit 1
fi
echo "OK: $KEY = $cur ns/op (baseline $base ns/op)"
