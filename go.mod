module fastt

go 1.22
