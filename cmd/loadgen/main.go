// Command loadgen load-tests a running `fastt serve` daemon and verifies
// its caching behaviour end to end.
//
//	loadgen -addr http://127.0.0.1:8080 -mode smoke
//	loadgen -addr http://127.0.0.1:8080 -mode bench -duration 3s -concurrency 32 -out BENCH_serve.json
//
// Smoke mode drives the correctness path: liveness, a cold compute, a warm
// byte-identical cache hit, and a 64-way thundering herd that must coalesce
// onto exactly one search (asserted via /v1/stats counters). The herd
// assertion needs the daemon started with `-search-delay 50ms` (or more):
// real searches on small graphs finish in single-digit milliseconds, faster
// than 64 client connections can arrive, so without injected latency the
// joiners land as ordinary cache hits after the flight has retired.
//
// Bench mode replays a catalog-drawn request mixture against a warmed
// cache: N distinct provenance keys, a configurable fraction of traffic
// concentrated on the hottest key, fingerprint-only requests on the warm
// path. It reports req/s, p50/p95/p99 latency and the cache hit rate, and
// writes them as JSON for scripts/bench.sh to gate on.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"fastt/internal/graph"
	"fastt/internal/models"
	"fastt/internal/serve"
	"fastt/internal/strategy"
)

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "serve daemon base URL")
		mode        = flag.String("mode", "bench", "bench or smoke")
		duration    = flag.Duration("duration", 3*time.Second, "bench duration")
		concurrency = flag.Int("concurrency", 8*runtime.NumCPU(), "concurrent bench workers")
		warmup      = flag.Duration("warmup", 500*time.Millisecond, "unmeasured bench warmup")
		numKeys     = flag.Int("keys", 4, "distinct warm cache keys in the bench mixture")
		hot         = flag.Float64("hot", 0.5, "fraction of bench traffic on the hottest key")
		out         = flag.String("out", "", "write the bench report as JSON to this file")
	)
	flag.Parse()
	base := strings.TrimRight(*addr, "/")
	var err error
	switch *mode {
	case "smoke":
		err = smoke(base)
	case "bench":
		err = bench(base, *duration, *warmup, *concurrency, *numKeys, *hot, *out)
	default:
		err = fmt.Errorf("unknown -mode %q (want bench or smoke)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// client is tuned for a loopback benchmark: enough idle connections that
// every worker keeps one alive.
func client(concurrency int) *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        concurrency + 8,
		MaxIdleConnsPerHost: concurrency + 8,
	}}
}

// benchModel is one warm cache key: a catalog-drawn graph on a cluster
// shape, plus the prebuilt request bodies.
type benchModel struct {
	name     string
	coldBody []byte // full-graph request, populates the cache
	warmBody []byte // fingerprint-only request, the measured fast path
}

// catalogMixture builds n distinct provenance keys from the model catalog:
// small batches keep the graphs quick to search and the artifacts compact,
// and varying (model, batch, shape) varies the fingerprint coordinate.
func catalogMixture(n int) ([]benchModel, error) {
	specs := append(models.Catalog(), models.Extras()...)
	type variant struct {
		model string
		batch int
		gpus  int
	}
	var variants []variant
	for _, batch := range []int{8, 16} {
		for _, s := range specs {
			variants = append(variants, variant{s.Name, batch, 2})
		}
	}
	if n > len(variants) {
		return nil, fmt.Errorf("at most %d distinct keys available, asked for %d", len(variants), n)
	}
	// Prefer the small models first so warming stays fast.
	order := []string{"MLP", "LeNet", "AlexNet", "VGG-19"}
	rank := func(name string) int {
		for i, p := range order {
			if p == name {
				return i
			}
		}
		return len(order)
	}
	sort.SliceStable(variants, func(a, b int) bool { return rank(variants[a].model) < rank(variants[b].model) })

	var out []benchModel
	for _, v := range variants[:n] {
		spec, err := models.ByName(v.model)
		if err != nil {
			return nil, err
		}
		m, err := spec.Build(v.batch)
		if err != nil {
			return nil, err
		}
		g, err := graph.BuildDataParallel(m, v.gpus)
		if err != nil {
			return nil, err
		}
		var gbuf bytes.Buffer
		if err := g.WriteJSON(&gbuf); err != nil {
			return nil, err
		}
		shape := fmt.Sprintf(`{"servers":1,"gpusPerServer":%d}`, v.gpus)
		cold := fmt.Sprintf(`{"model":%q,"cluster":%s,"graph":%s}`, v.model, shape, gbuf.String())
		warm := fmt.Sprintf(`{"cluster":%s,"graphFingerprint":%q}`, shape, strategy.Fingerprint(g))
		out = append(out, benchModel{name: v.model, coldBody: []byte(cold), warmBody: []byte(warm)})
	}
	return out, nil
}

// herdModel builds the thundering-herd request: a deep catalog model whose
// cold search runs long enough that all herd requests arrive while the
// flight is still in progress.
func herdModel() ([]byte, error) {
	spec, err := models.ByName("VGG-19")
	if err != nil {
		return nil, err
	}
	m, err := spec.Build(16)
	if err != nil {
		return nil, err
	}
	g, err := graph.BuildDataParallel(m, 2)
	if err != nil {
		return nil, err
	}
	var gbuf bytes.Buffer
	if err := g.WriteJSON(&gbuf); err != nil {
		return nil, err
	}
	body := fmt.Sprintf(`{"model":"VGG-19","cluster":{"servers":1,"gpusPerServer":2},"graph":%s}`, gbuf.String())
	return []byte(body), nil
}

func post(c *http.Client, base string, body []byte) (*http.Response, []byte, error) {
	resp, err := c.Post(base+"/v1/compute", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, b, err
}

func stats(c *http.Client, base string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := c.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// report is the BENCH_serve.json schema scripts/bench.sh gates on.
type report struct {
	ReqPerSec   float64 `json:"req_per_sec"`
	P50Ns       int64   `json:"p50_ns"`
	P95Ns       int64   `json:"p95_ns"`
	P99Ns       int64   `json:"p99_ns"`
	HitRate     float64 `json:"hit_rate"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Concurrency int     `json:"concurrency"`
	DurationMs  int64   `json:"duration_ms"`
	Keys        int     `json:"keys"`
	NCPU        int     `json:"ncpu"`
}

func bench(base string, duration, warmup time.Duration, concurrency, numKeys int, hot float64, out string) error {
	c := client(concurrency)
	mix, err := catalogMixture(numKeys)
	if err != nil {
		return err
	}
	// Warm every key; the bench measures the cache, not the search.
	for _, m := range mix {
		resp, body, err := post(c, base, m.coldBody)
		if err != nil {
			return fmt.Errorf("warm %s: %w", m.name, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("warm %s: status %d: %s", m.name, resp.StatusCode, body)
		}
	}
	before, err := stats(c, base)
	if err != nil {
		return err
	}

	// pick returns the request mixture: `hot` of the traffic on key 0, the
	// rest spread evenly.
	pick := func(r *rand.Rand) []byte {
		if len(mix) == 1 || r.Float64() < hot {
			return mix[0].warmBody
		}
		return mix[1+r.Intn(len(mix)-1)].warmBody
	}

	type workerOut struct {
		lat      []int64
		requests int64
		errors   int64
	}
	// The first warmup's worth of requests is driven but not recorded:
	// connection establishment and scheduler ramp-up would otherwise fold
	// cold-start noise into the tail percentiles.
	outs := make([]workerOut, concurrency)
	warmEnd := time.Now().Add(warmup)
	deadline := warmEnd.Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) + 1))
			o := &outs[w]
			o.lat = make([]int64, 0, 1<<16)
			for time.Now().Before(deadline) {
				body := pick(r)
				t0 := time.Now()
				resp, _, err := post(c, base, body)
				el := time.Since(t0)
				if t0.Before(warmEnd) {
					continue
				}
				o.requests++
				if err != nil || resp.StatusCode != http.StatusOK {
					o.errors++
					continue
				}
				o.lat = append(o.lat, int64(el))
			}
		}(w)
	}
	wg.Wait()
	elapsed := duration

	after, err := stats(c, base)
	if err != nil {
		return err
	}
	var all []int64
	var requests, errors int64
	for _, o := range outs {
		all = append(all, o.lat...)
		requests += o.requests
		errors += o.errors
	}
	if len(all) == 0 {
		return fmt.Errorf("no successful requests (of %d sent, %d errors)", requests, errors)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pct := func(p float64) int64 {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	dHits := after.Cache.Hits - before.Cache.Hits
	dMiss := after.Cache.Misses - before.Cache.Misses
	hitRate := 1.0
	if dHits+dMiss > 0 {
		hitRate = float64(dHits) / float64(dHits+dMiss)
	}
	rep := report{
		ReqPerSec:   float64(len(all)) / elapsed.Seconds(),
		P50Ns:       pct(0.50),
		P95Ns:       pct(0.95),
		P99Ns:       pct(0.99),
		HitRate:     hitRate,
		Requests:    requests,
		Errors:      errors,
		Concurrency: concurrency,
		DurationMs:  elapsed.Milliseconds(),
		Keys:        numKeys,
		NCPU:        runtime.NumCPU(),
	}
	fmt.Printf("%.0f req/s  p50 %v  p95 %v  p99 %v  hit rate %.4f  (%d requests, %d errors, %d workers, ncpu %d)\n",
		rep.ReqPerSec, time.Duration(rep.P50Ns), time.Duration(rep.P95Ns), time.Duration(rep.P99Ns),
		rep.HitRate, rep.Requests, rep.Errors, rep.Concurrency, rep.NCPU)
	if out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
	}
	return nil
}

// smoke drives the correctness path against a live daemon.
func smoke(base string) error {
	c := client(80)
	resp, err := c.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}

	mix, err := catalogMixture(2)
	if err != nil {
		return err
	}
	type envelope struct {
		Cached   bool            `json:"cached"`
		Key      string          `json:"key"`
		Artifact json.RawMessage `json:"artifact"`
	}

	// Cold compute then warm hit, byte-identical.
	resp, body, err := post(c, base, mix[0].coldBody)
	if err != nil {
		return fmt.Errorf("cold compute: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cold compute status %d: %s", resp.StatusCode, body)
	}
	var cold envelope
	if err := json.Unmarshal(body, &cold); err != nil {
		return fmt.Errorf("cold response: %w", err)
	}
	if cold.Cached {
		return fmt.Errorf("cold response claims cached=true (stale daemon? restart it)")
	}
	resp, body, err = post(c, base, mix[0].coldBody)
	if err != nil {
		return fmt.Errorf("warm compute: %w", err)
	}
	var warm envelope
	if err := json.Unmarshal(body, &warm); err != nil {
		return fmt.Errorf("warm response: %w", err)
	}
	if !warm.Cached || resp.Header.Get(serve.CacheHeader) != "hit" {
		return fmt.Errorf("warm response not a cache hit (cached=%v, %s=%q)",
			warm.Cached, serve.CacheHeader, resp.Header.Get(serve.CacheHeader))
	}
	if !bytes.Equal(cold.Artifact, warm.Artifact) {
		return fmt.Errorf("warm artifact differs from cold artifact")
	}
	fmt.Println("smoke: cold compute + warm byte-identical hit ok")

	// Thundering herd on a second, uncached model: 64 concurrent identical
	// cold requests must coalesce onto exactly one search. The herd uses a
	// deep model so the search outlasts client arrival; a start barrier
	// releases all requests at once.
	herdBody, err := herdModel()
	if err != nil {
		return err
	}
	before, err := stats(c, base)
	if err != nil {
		return err
	}
	const herd = 64
	errs := make([]error, herd)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			resp, body, err := post(c, base, herdBody)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("herd request %d: %w", i, err)
		}
	}
	after, err := stats(c, base)
	if err != nil {
		return err
	}
	// Conservation, not timing: exactly one search ran, and every other
	// request was answered either by joining the flight (coalesced) or by
	// the cache the flight populated (hit). How the 63 split between the
	// two depends on arrival spread vs search duration, so only the sum is
	// asserted exactly; the -search-delay requirement above guarantees at
	// least some observable overlap.
	dSearches := after.Searches - before.Searches
	dCoalesced := after.Coalesced - before.Coalesced
	dHits := after.Cache.Hits - before.Cache.Hits
	if dSearches != 1 {
		return fmt.Errorf("herd of %d performed %d searches, want exactly 1", herd, dSearches)
	}
	if dCoalesced+dHits != herd-1 {
		return fmt.Errorf("herd of %d: coalesced %d + hits %d != %d", herd, dCoalesced, dHits, herd-1)
	}
	if dCoalesced == 0 {
		return fmt.Errorf("herd observed no coalescing; start the daemon with -search-delay 100ms or more")
	}
	fmt.Printf("smoke: %d-way herd coalesced to 1 search (%d joined in flight, %d hit the cache) ok\n",
		herd, dCoalesced, dHits)
	return nil
}
