package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastt/internal/core"
	"fastt/internal/serve"
)

// runServe implements the `fastt serve` subcommand: a long-running
// strategy-as-a-service daemon. POST /v1/compute answers placement
// questions from a sharded artifact cache keyed by the provenance triple
// (graph fingerprint × cluster shape × cost hash), coalescing concurrent
// identical misses onto one OS-DPOS search; GET /v1/stats exposes the
// counters; GET /healthz reports liveness. SIGINT/SIGTERM drain and exit.
func runServe(argv []string) error {
	fs := flag.NewFlagSet("fastt serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
		workers     = fs.Int("workers", 1, "worker goroutines per strategy search")
		cacheMB     = fs.Int64("cache-mb", 256, "artifact cache budget in MiB")
		shards      = fs.Int("shards", 16, "cache shard count")
		maxSearches = fs.Int("max-searches", 0, "max concurrently running searches (0 = CPUs/workers)")
		maxQueue    = fs.Int("max-queue", 64, "max searches queued for admission before 429")
		searchTmo   = fs.Duration("search-timeout", 60*time.Second, "per-search wall-time cap")
		searchDelay = fs.Duration("search-delay", 0, "injected latency per search (load-testing aid)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	svc := serve.New(serve.Config{
		CacheBytes:    *cacheMB << 20,
		Shards:        *shards,
		Sched:         core.Options{MaxSplitOps: 8, MaxSyncGroups: 8, Workers: *workers},
		MaxSearches:   *maxSearches,
		MaxQueue:      *maxQueue,
		SearchTimeout: *searchTmo,
		SearchDelay:   *searchDelay,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	// The exact line scripts/check.sh greps for to discover an ephemeral
	// port; keep the format stable.
	fmt.Printf("fastt serve: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("fastt serve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-errCh // Serve returns http.ErrServerClosed once Shutdown begins
	return nil
}
