// Command fastt computes and evaluates a FastT deployment strategy for one
// of the benchmark models on a simulated GPU cluster: it runs the
// data-parallel baseline, bootstraps the FastT session (cost models,
// DPOS/OS-DPOS, checkpoint-activated strategies with rollback), and reports
// speed, the split list, per-device placement, utilization and an ASCII
// timeline. Optionally it exports a Chrome trace and a Graphviz DOT of the
// placed graph.
//
// Usage:
//
//	fastt -model VGG-19 -gpus 4 [-servers 1] [-batch 64] [-weak]
//	      [-workers N] [-trace out.json] [-dot out.dot] [-timeline]
//	      [-strategy s.json] [-save-costs c.json] [-load-costs c.json]
//	      [-faults plan.json]
//	fastt compute -model MLP -gpus 2 -out s.json [-save-costs c.json]
//
// The compute subcommand runs the strategy search offline and writes the
// result as a versioned JSON artifact; -strategy loads such an artifact,
// validates it against the target graph and cluster, and executes it without
// repeating the search — the paper's "compute in minutes, deploy later"
// workflow.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	goruntime "runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/placement"
	"fastt/internal/runtime"
	"fastt/internal/session"
	"fastt/internal/sim"
	"fastt/internal/strategy"
	"fastt/internal/trace"
	"fastt/internal/validate"
)

func main() {
	var err error
	switch {
	case len(os.Args) > 1 && os.Args[1] == "compute":
		err = runCompute(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "serve":
		err = runServe(os.Args[2:])
	default:
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fastt:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		model    = flag.String("model", "VGG-19", "benchmark model (see -list)")
		list     = flag.Bool("list", false, "list available models and exit")
		gpus     = flag.Int("gpus", 4, "number of GPUs")
		servers  = flag.Int("servers", 1, "number of servers (GPUs divide evenly)")
		batch    = flag.Int("batch", 0, "global batch override (0 = paper default)")
		weak     = flag.Bool("weak", false, "weak scaling (fixed per-GPU batch)")
		iters    = flag.Int("iters", 5, "measured iterations")
		seed     = flag.Int64("seed", 1, "random seed")
		traceOut = flag.String("trace", "", "write a Chrome trace of one FastT iteration")
		spansOut = flag.String("spans", "", "write the FastT iteration's spans as CSV")
		dotOut   = flag.String("dot", "", "write the placed graph in Graphviz DOT")
		timeline = flag.Bool("timeline", false, "print an ASCII timeline")
		graphIn  = flag.String("graph", "", "schedule a JSON graph (see graph.WriteJSON) instead of a catalog model")
		export   = flag.String("export", "", "write the selected model's training graph as JSON and exit")
		workers  = flag.Int("workers", 0, "strategy-calculator worker goroutines (0 = all CPUs, 1 = sequential)")
		stratIn  = flag.String("strategy", "", "execute a strategy artifact written by 'fastt compute' instead of searching")
		saveCost = flag.String("save-costs", "", "write the learned cost models to this file after training")
		loadCost = flag.String("load-costs", "", "preload cost models saved by an earlier run before bootstrapping")
		faultsIn = flag.String("faults", "", "inject deterministic faults from a JSON plan (times relative to training start); device failures trigger checkpoint recovery")
		clustIn  = flag.String("cluster", "", "heterogeneous cluster spec JSON (overrides -gpus/-servers; see device.ReadSpec)")
	)
	flag.Parse()

	if *list {
		for _, s := range append(models.Catalog(), models.Extras()...) {
			fmt.Printf("%-16s global batch %d, per-GPU batch %d (%s)\n",
				s.Name, s.GlobalBatch, s.PerGPUBatch, s.Kind)
		}
		return nil
	}
	if *graphIn != "" {
		return runCustomGraph(*graphIn, *clustIn, *gpus, *servers, *iters, *workers, *seed, *timeline)
	}
	spec, err := models.ByName(*model)
	if err != nil {
		return err
	}
	if *export != "" {
		return exportModel(spec, *batch, *export)
	}
	cluster, err := buildCluster(*clustIn, *gpus, *servers)
	if err != nil {
		return err
	}
	ngpus, nservers := cluster.NumDevices(), cluster.Servers()

	perGPU, global := resolveBatch(spec, ngpus, *batch, *weak)
	fmt.Printf("%s on %d GPU(s) across %d server(s), global batch %d (%d per GPU)\n\n",
		spec.Name, ngpus, nservers, global, perGPU)

	m, err := spec.Build(perGPU)
	if err != nil {
		return fmt.Errorf("build model: %w", err)
	}
	dp, err := graph.BuildDataParallel(m, ngpus)
	if err != nil {
		return fmt.Errorf("replicate model: %w", err)
	}
	stats := dp.ComputeStats()
	fmt.Printf("training graph: %d ops, %d edges, %.1f GFLOPs/iter, %.1f MB parameters\n\n",
		stats.Ops, stats.Edges, float64(stats.TotalFLOPs)/1e9, float64(stats.ParamBytes)/1e6)

	engine := sim.NewEngine(cluster, kernels.NewDefaultOracle(cluster))
	dpIter, dpErr := measureDP(engine, cluster, dp, *iters, *seed)
	switch {
	case dpErr == nil:
		fmt.Printf("data parallel : %10v/iter  %10.1f samples/s\n",
			dpIter.Round(time.Microsecond), float64(global)/dpIter.Seconds())
	default:
		var oom *sim.OOMError
		if !errors.As(dpErr, &oom) {
			return dpErr
		}
		fmt.Printf("data parallel : OOM (%v)\n", dpErr)
	}

	train := dp
	if dpErr != nil {
		full, err := spec.Build(global)
		if err != nil {
			return fmt.Errorf("build full-batch model: %w", err)
		}
		if train, err = graph.BuildDataParallel(full, 1); err != nil {
			return fmt.Errorf("wrap full-batch model: %w", err)
		}
	}
	if *stratIn != "" {
		// Deploy a precomputed strategy: no cost-model bootstrap, no search —
		// validate the artifact against this graph and cluster and execute it.
		return runStrategyFile(*stratIn, cluster, train, global, *iters, *seed)
	}
	var exec runtime.Executor = sim.WrapEngine(engine)
	var faultExec *sim.FaultyExecutor
	var plan *sim.FaultPlan
	if *faultsIn != "" {
		if plan, err = sim.ReadPlanFile(*faultsIn); err != nil {
			return err
		}
		if err := plan.Validate(cluster.NumDevices()); err != nil {
			return err
		}
		// The plan is armed after bootstrap: its times are relative to the
		// start of normal training, so the user does not need to know how
		// much simulated time pre-training consumes.
		if faultExec, err = sim.NewFaultyExecutor(cluster, kernels.NewDefaultOracle(cluster), nil); err != nil {
			return err
		}
		exec = faultExec
	}
	s, err := session.New(cluster, exec, train, session.Config{Seed: *seed, Sched: core.Options{
		MaxSplitOps:   8,
		MaxSyncGroups: 8,
		Workers:       *workers,
	}})
	if err != nil {
		return err
	}
	if *loadCost != "" {
		if err := loadCostsFile(s, *loadCost); err != nil {
			return err
		}
	}
	rep, err := s.Bootstrap()
	if err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	if faultExec != nil {
		for i := range plan.Faults {
			plan.Faults[i].AtNs += int64(faultExec.Epoch())
		}
		if err := faultExec.SetPlan(plan); err != nil {
			return fmt.Errorf("arm fault plan: %w", err)
		}
	}
	run, err := s.Run(*iters)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if *saveCost != "" {
		if err := saveCostsFile(s, *saveCost); err != nil {
			return err
		}
		fmt.Printf("cost models written to %s\n", *saveCost)
	}
	fmt.Printf("FastT         : %10v/iter  %10.1f samples/s  (start: %s, %d round(s), calc %v)\n",
		run.AvgIter.Round(time.Microsecond), float64(global)/run.AvgIter.Seconds(),
		rep.Start, len(rep.Rounds), rep.CalcWallTotal.Round(time.Millisecond))
	if dpErr == nil && dpIter > 0 {
		fmt.Printf("speedup       : %+.1f%%\n", (dpIter.Seconds()/run.AvgIter.Seconds()-1)*100)
	}

	if splits := s.ActiveSplits(); len(splits) > 0 {
		fmt.Println("\noperation split list:")
		for _, sp := range splits {
			fmt.Printf("  %s\n", sp)
		}
	}
	if faultExec != nil {
		fmt.Printf("\ninjected faults: %d event(s), %d device loss(es)\n",
			len(run.FaultEvents)+run.DeviceLosses, run.DeviceLosses)
		for _, ev := range run.FaultEvents {
			fmt.Printf("  %s\n", ev)
		}
		if run.DeviceLosses > 0 {
			fmt.Printf("recovery      : %d iteration(s) lost, %v simulated recovery, recompute wall %v\n",
				run.LostIterations, run.RecoveryTime.Round(time.Millisecond),
				run.RecomputeWall.Round(time.Millisecond))
			if run.Degraded != "" {
				fmt.Printf("                degraded to %s after exhausting retries\n", run.Degraded)
			} else {
				fmt.Printf("                resumed under a recomputed strategy on %d GPU(s)\n",
					s.Cluster().NumDevices())
			}
		}
	}
	counts := make(map[int]int)
	for _, d := range s.ActivePlacement() {
		counts[d]++
	}
	// Recovery may have shrunk the cluster; report the one actually in use.
	live := s.Cluster()
	fmt.Println("\nops per device:")
	for d := 0; d < live.NumDevices(); d++ {
		fmt.Printf("  %-14s %d\n", live.Device(d).Name, counts[d])
	}

	fmt.Println("\nutilization (last iteration):")
	if err := trace.WriteUtilization(os.Stdout, run.Last); err != nil {
		return err
	}
	if *timeline {
		fmt.Println("\ntimeline:")
		if err := trace.WriteTimeline(os.Stdout, run.Last, 100); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f, s.ActiveGraph(), run.Last); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Printf("\nChrome trace written to %s\n", *traceOut)
	}
	if *spansOut != "" {
		f, err := os.Create(*spansOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteSpansCSV(f, s.ActiveGraph(), run.Last); err != nil {
			return fmt.Errorf("write spans: %w", err)
		}
		fmt.Printf("span CSV written to %s\n", *spansOut)
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := s.ActiveGraph().WriteDOT(f, s.ActivePlacement()); err != nil {
			return fmt.Errorf("write dot: %w", err)
		}
		fmt.Printf("placed graph written to %s\n", *dotOut)
	}
	return nil
}

// measureDP runs the pinned data-parallel baseline.
func measureDP(engine *sim.Engine, cluster *device.Cluster, g *graph.Graph, iters int, seed int64) (time.Duration, error) {
	place, err := placement.DataParallel(g, cluster)
	if err != nil {
		return 0, err
	}
	var total time.Duration
	for i := 0; i < iters; i++ {
		res, err := engine.Run(g, place, sim.Config{Jitter: 0.02, Seed: seed + int64(i)})
		if err != nil {
			return 0, err
		}
		total += res.Makespan
	}
	return total / time.Duration(iters), nil
}

// runCustomGraph schedules a user-provided JSON graph with DPOS/OS-DPOS and
// simulates the result — the library path for graphs that are not in the
// model catalog.
func runCustomGraph(path, clusterSpec string, gpus, servers, iters, workers int, seed int64, timeline bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := graph.ReadJSON(f)
	if err != nil {
		return fmt.Errorf("read graph: %w", err)
	}
	if g.HasCycles() {
		return fmt.Errorf("graph has cycles; unroll it first (graph.Unroll)")
	}
	cluster, err := buildCluster(clusterSpec, gpus, servers)
	if err != nil {
		return err
	}
	oracle := kernels.NewDefaultOracle(cluster)
	st, err := core.ComputeStrategy(g, cluster, oracle, core.Options{MaxSplitOps: 8, MaxSyncGroups: 8, Workers: workers})
	if err != nil {
		return fmt.Errorf("compute strategy: %w", err)
	}
	if err := validate.Strategy(st, cluster, validate.Options{SkipMemory: true}); err != nil {
		return fmt.Errorf("strategy invalid: %w", err)
	}
	engine := sim.NewEngine(cluster, oracle)
	var total time.Duration
	var last *sim.Result
	for i := 0; i < iters; i++ {
		res, err := engine.Run(st.Graph, st.Placement, sim.Config{
			Discipline: sim.Priority,
			Priorities: st.Priorities,
			Jitter:     0.02,
			Seed:       seed + int64(i),
		})
		if err != nil {
			return err
		}
		total += res.Makespan
		last = res
	}
	avg := total / time.Duration(iters)
	fmt.Printf("custom graph: %d ops, FastT iteration %v (estimate %v)\n",
		st.Graph.NumOps(), avg.Round(time.Microsecond), st.Predicted.Round(time.Microsecond))
	if len(st.Splits) > 0 {
		fmt.Printf("split list: %v\n", st.Splits)
	}
	if timeline {
		return trace.WriteTimeline(os.Stdout, last, 100)
	}
	return nil
}

// exportModel writes a catalog model's training graph as JSON, usable with
// -graph or external tooling.
func exportModel(spec models.Spec, batch int, path string) error {
	if batch <= 0 {
		batch = spec.GlobalBatch
	}
	g, err := spec.Build(batch)
	if err != nil {
		return fmt.Errorf("build model: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteJSON(f); err != nil {
		return fmt.Errorf("write graph: %w", err)
	}
	fmt.Printf("%s (batch %d): %d ops, %d edges written to %s\n",
		spec.Name, batch, g.NumOps(), g.NumEdges(), path)
	return nil
}

// startProfiles starts a CPU profile when cpuPath is non-empty and returns a
// stop function that finishes it and writes an exit heap profile to memPath
// (when non-empty), so search-time regressions can be diagnosed from a flag
// instead of a rebuilt binary.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuF *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			goruntime.GC() // report live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// runCompute implements the `fastt compute` subcommand: run the bootstrap
// and strategy search offline, write the winning strategy as a versioned
// JSON artifact (plus, optionally, the learned cost models), then verify the
// artifact by reloading it from disk and executing it — the exact path a
// later `fastt -strategy` deployment takes.
func runCompute(argv []string) (retErr error) {
	fs := flag.NewFlagSet("fastt compute", flag.ExitOnError)
	var (
		model     = fs.String("model", "MLP", "benchmark model (see fastt -list)")
		gpus      = fs.Int("gpus", 2, "number of GPUs")
		replicas  = fs.Int("replicas", 0, "data-parallel replicas in the training graph (0 = one per GPU); set it to the old device count when recomputing with -seed-strategy after the cluster shrank, so the graph — and its fingerprint — stay those the seed was computed for")
		servers   = fs.Int("servers", 1, "number of servers (GPUs divide evenly)")
		batch     = fs.Int("batch", 0, "global batch override (0 = paper default)")
		weak      = fs.Bool("weak", false, "weak scaling (fixed per-GPU batch)")
		iters     = fs.Int("iters", 5, "verification iterations on the written artifact")
		seed      = fs.Int64("seed", 1, "random seed")
		workers   = fs.Int("workers", 0, "strategy-calculator worker goroutines (0 = all CPUs, 1 = sequential)")
		specFlag  = fs.String("spec", "on", "speculative round pipelining in the parallel search: on|off (mirrors -workers=1 determinism escape hatches)")
		out       = fs.String("out", "strategy.json", "write the strategy artifact to this file")
		saveCost  = fs.String("save-costs", "", "write the learned cost models to this file")
		loadCost  = fs.String("load-costs", "", "preload cost models saved by an earlier run")
		maxRounds = fs.Int("rounds", 0, "max pre-training strategy-search rounds (0 = default)")
		seedStrat = fs.String("seed-strategy", "", "warm-start the search from a prior strategy artifact for the same model graph (e.g. one computed before the cluster changed)")
		clustIn   = fs.String("cluster", "", "heterogeneous cluster spec JSON (overrides -gpus/-servers; see device.ReadSpec)")
		bound     = fs.Bool("bound", false, "compute the reference lower bound on the ideal-system optimum and report the strategy's gap from it (optimal.Bound)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the strategy computation to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	var disableSpec bool
	switch *specFlag {
	case "on":
	case "off":
		disableSpec = true
	default:
		return fmt.Errorf("-spec must be on or off, got %q", *specFlag)
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); retErr == nil {
			retErr = perr
		}
	}()
	spec, err := models.ByName(*model)
	if err != nil {
		return err
	}
	cluster, err := buildCluster(*clustIn, *gpus, *servers)
	if err != nil {
		return err
	}
	ngpus := cluster.NumDevices()
	nrep := *replicas
	if nrep <= 0 {
		nrep = ngpus
	}
	perGPU, global := resolveBatch(spec, nrep, *batch, *weak)
	train, fullBatch, err := trainGraphFor(spec, cluster, nrep, perGPU, global)
	if err != nil {
		return err
	}
	if fullBatch {
		fmt.Println("data parallelism OOMs; searching over the full-batch model graph")
	}

	sched := core.Options{
		MaxSplitOps:        8,
		MaxSyncGroups:      8,
		Workers:            *workers,
		DisableSpeculation: disableSpec,
		ComputeBound:       *bound,
	}
	if *seedStrat != "" {
		// Warm start: every bootstrap round's search prunes against the
		// prior artifact's re-evaluated makespan (see core.Options.Seed).
		// The fingerprint is checked up front so a seed for the wrong model
		// fails with a clear message instead of mid-bootstrap.
		prior, err := strategy.ReadFile(*seedStrat)
		if err != nil {
			return fmt.Errorf("seed strategy: %w", err)
		}
		if fp := strategy.Fingerprint(train); prior.Fingerprint != fp {
			return fmt.Errorf("seed strategy %s: %w: artifact %s, this graph %s",
				*seedStrat, strategy.ErrFingerprint, prior.Fingerprint, fp)
		}
		sched.Seed = prior
	}
	exec := sim.DefaultExecutor(cluster)
	s, err := session.New(cluster, exec, train, session.Config{Seed: *seed, MaxRounds: *maxRounds,
		Sched: sched})
	if err != nil {
		return err
	}
	if *loadCost != "" {
		if err := loadCostsFile(s, *loadCost); err != nil {
			return err
		}
	}
	// Ctrl-C cancels the running strategy search (plumbed through the core
	// candidate loops) instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := s.BootstrapCtx(ctx)
	if err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}

	art := *s.ActiveArtifact()
	art.Provenance.Model = spec.Name
	if err := art.WriteFile(*out); err != nil {
		return fmt.Errorf("write artifact: %w", err)
	}
	fmt.Printf("%s on %d GPU(s): strategy artifact written to %s (origin %s, %d split(s), calc %v)\n",
		spec.Name, ngpus, *out, art.Provenance.Origin, len(art.Splits),
		rep.CalcWallTotal.Round(time.Millisecond))
	if *seedStrat != "" {
		fmt.Printf("warm start    : seed bound %v, seeded %d round(s), seed won %d round(s)\n",
			rep.SeedBound.Round(time.Microsecond), rep.SeededRounds, rep.SeedWonRounds)
	}
	if *bound {
		if rep.LowerBound > 0 {
			// Report the last bounded round's candidate: the pair the gap
			// was computed from (the active artifact can be the bootstrap
			// strategy, which carries no search prediction).
			var predicted time.Duration
			for _, r := range rep.Rounds {
				if r.LowerBound > 0 {
					predicted = r.Predicted
				}
			}
			fmt.Printf("bound         : ideal optimum >= %v (%s), predicted %v, gap <= %.1f%%\n",
				rep.LowerBound.Round(time.Microsecond), rep.BoundMethod,
				predicted.Round(time.Microsecond), rep.GapPct)
		} else {
			fmt.Println("bound         : unavailable")
		}
	}
	if *saveCost != "" {
		if err := saveCostsFile(s, *saveCost); err != nil {
			return err
		}
		fmt.Printf("cost models written to %s\n", *saveCost)
	}

	// Verify the artifact as a deployment would consume it: reload the file,
	// validate, materialize and execute.
	reloaded, err := strategy.ReadFile(*out)
	if err != nil {
		return fmt.Errorf("reload artifact: %w", err)
	}
	g, err := validate.ArtifactStrategy(reloaded, train, cluster, validate.Options{SkipMemory: true})
	if err != nil {
		return fmt.Errorf("written artifact invalid: %w", err)
	}
	avg, _, err := runArtifact(exec, g, reloaded, *iters, *seed)
	if err != nil {
		return fmt.Errorf("verify artifact: %w", err)
	}
	fmt.Printf("verified      : %10v/iter  %10.1f samples/s\n",
		avg.Round(time.Microsecond), float64(global)/avg.Seconds())
	fmt.Println(artifactExecLine(reloaded, avg))
	return nil
}

// runStrategyFile executes a precomputed strategy artifact against the
// deployment target: validate (schema, graph fingerprint, cluster shape,
// structural soundness), materialize the split graph, run.
func runStrategyFile(path string, cluster *device.Cluster, base *graph.Graph, global, iters int, seed int64) error {
	art, err := strategy.ReadFile(path)
	if err != nil {
		return err
	}
	g, err := validate.ArtifactStrategy(art, base, cluster, validate.Options{SkipMemory: true})
	if err != nil {
		return fmt.Errorf("artifact %s does not fit this deployment: %w", path, err)
	}
	avg, _, err := runArtifact(sim.DefaultExecutor(cluster), g, art, iters, seed)
	if err != nil {
		return err
	}
	fmt.Printf("strategy file : %10v/iter  %10.1f samples/s  (origin: %s, model: %s, %d split(s))\n",
		avg.Round(time.Microsecond), float64(global)/avg.Seconds(),
		art.Provenance.Origin, art.Provenance.Model, len(art.Splits))
	fmt.Println(artifactExecLine(art, avg))
	return nil
}

// runArtifact executes iters iterations of a validated artifact, using the
// same jitter and per-iteration seeds on every path so the compute-time
// verification run and a later deployment of the same file agree exactly.
func runArtifact(exec runtime.Executor, g *graph.Graph, art *strategy.Artifact, iters int, seed int64) (time.Duration, *runtime.Result, error) {
	var total time.Duration
	var last *runtime.Result
	for i := 0; i < iters; i++ {
		res, err := exec.Run(g, art, runtime.Config{Jitter: 0.02, Seed: seed + int64(i), EnforceOrder: true})
		if err != nil {
			return 0, nil, err
		}
		total += res.Makespan
		last = res
	}
	return total / time.Duration(iters), last, nil
}

// artifactExecLine renders the canonical execution line the CLI smoke test
// compares between `fastt compute`'s verification run and a later
// `fastt -strategy` run: the artifact digest plus the exact average makespan.
func artifactExecLine(art *strategy.Artifact, avg time.Duration) string {
	digest, err := strategy.HashJSON(art.WriteJSON)
	if err != nil {
		digest = "unhashable"
	}
	return fmt.Sprintf("artifact-exec: digest=%s avg=%dns", digest, avg.Nanoseconds())
}

// newTopology validates and builds the simulated cluster.
func newTopology(gpus, servers int) (*device.Cluster, error) {
	if gpus < 1 || servers < 1 || gpus%servers != 0 {
		return nil, fmt.Errorf("bad topology: %d GPUs on %d servers", gpus, servers)
	}
	return device.NewCluster(servers, gpus/servers)
}

// buildCluster resolves the deployment topology: the heterogeneous cluster
// spec file when -cluster is given (JSON; see device.ReadSpec for the
// format), the regular all-V100 -gpus/-servers grid otherwise.
func buildCluster(specPath string, gpus, servers int) (*device.Cluster, error) {
	if specPath == "" {
		return newTopology(gpus, servers)
	}
	spec, err := device.ReadSpecFile(specPath)
	if err != nil {
		return nil, err
	}
	return device.NewHeterogeneous(spec)
}

// resolveBatch applies the strong/weak scaling batch policy.
func resolveBatch(spec models.Spec, gpus, batchOvr int, weak bool) (perGPU, global int) {
	global = spec.GlobalBatch
	if batchOvr > 0 {
		global = batchOvr
	}
	perGPU = global / gpus
	if weak {
		perGPU = spec.PerGPUBatch
		global = perGPU * gpus
	}
	if perGPU < 1 {
		perGPU = 1
	}
	return perGPU, global
}

// trainGraphFor applies the paper's input-graph rule (Sec. 5.2): the
// data-parallel training graph when it executes without OOM, otherwise the
// plain model DAG at the full global batch. The second return reports
// whether the full-batch fallback was taken.
func trainGraphFor(spec models.Spec, cluster *device.Cluster, gpus, perGPU, global int) (*graph.Graph, bool, error) {
	m, err := spec.Build(perGPU)
	if err != nil {
		return nil, false, fmt.Errorf("build model: %w", err)
	}
	dp, err := graph.BuildDataParallel(m, gpus)
	if err != nil {
		return nil, false, fmt.Errorf("replicate model: %w", err)
	}
	place, err := placement.DataParallel(dp, cluster)
	if errors.Is(err, placement.ErrTooManyReplicas) {
		// More replicas than devices — the fault-recovery shape (`-replicas`
		// pins the graph to the pre-failure device count). Naive one-replica-
		// per-GPU placement does not exist, so skip the OOM precheck and let
		// the strategy search place the graph.
		return dp, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	engine := sim.NewEngine(cluster, kernels.NewDefaultOracle(cluster))
	if _, err := engine.Run(dp, place, sim.Config{}); err != nil {
		var oom *sim.OOMError
		if !errors.As(err, &oom) {
			return nil, false, err
		}
		full, err := spec.Build(global)
		if err != nil {
			return nil, false, fmt.Errorf("build full-batch model: %w", err)
		}
		train, err := graph.BuildDataParallel(full, 1)
		if err != nil {
			return nil, false, fmt.Errorf("wrap full-batch model: %w", err)
		}
		return train, true, nil
	}
	return dp, false, nil
}

// loadCostsFile preloads saved cost models into the session.
func loadCostsFile(s *session.Session, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.LoadCosts(f); err != nil {
		return fmt.Errorf("load costs %s: %w", path, err)
	}
	return nil
}

// saveCostsFile writes the session's learned cost models.
func saveCostsFile(s *session.Session, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.SaveCosts(f); err != nil {
		f.Close()
		return fmt.Errorf("save costs %s: %w", path, err)
	}
	return f.Close()
}
