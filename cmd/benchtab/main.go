// Command benchtab regenerates the tables and figures of the FastT paper's
// evaluation on the simulated testbed.
//
// Usage:
//
//	benchtab [-what all|table1|table2|table3|table4|table5|table6|fig2|fig3|fig4|fig5|ablations|faults|hetero|warmstart|gap|scaling] [-iters N] [-seed N] [-models A,B]
//
// "scaling" prints the worker-sweep table (1/2/4/8 workers × catalog) of
// strategy-computation wall times; it is not part of "all" because it
// measures this machine's thread scaling, not the paper's testbed.
//
// "gap" prints the optimality-gap table: each catalog model × {2,4,8} GPUs
// with the OS-DPOS predicted makespan, the reference lower bound on the
// ideal-system optimum (exact rows marked), and the Theorem-1 check. The
// table carries no wall-clock columns, so reruns are byte-identical (the
// trailing "(generated in ...)" line is the only varying output). -models
// restricts it to a comma-separated subset of the catalog.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fastt/internal/experiments"
)

func main() {
	what := flag.String("what", "all", "which artifact to regenerate (comma-separated)")
	iters := flag.Int("iters", 5, "measured iterations per configuration")
	seed := flag.Int64("seed", 1, "random seed")
	modelsFlag := flag.String("models", "", "restrict the gap table to these comma-separated models (default: full catalog)")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProf := flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	flag.Parse()

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err == nil {
		err = run(*what, *iters, *seed, *modelsFlag)
		if perr := stopProf(); err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

// startProfiles starts a CPU profile when cpuPath is non-empty and returns a
// stop function that finishes it and writes an exit heap profile to memPath
// (when non-empty), so search-time regressions can be diagnosed from a flag
// instead of a rebuilt binary.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuF *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // report live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func run(what string, iters int, seed int64, modelsFlag string) error {
	cfg := experiments.Config{MeasureIters: iters, Seed: seed}
	gapModels := allModels()
	if modelsFlag != "" {
		gapModels = nil
		for _, m := range strings.Split(modelsFlag, ",") {
			if m = strings.TrimSpace(m); m != "" {
				gapModels = append(gapModels, m)
			}
		}
	}
	r := experiments.NewRunner(cfg)
	w := os.Stdout

	want := make(map[string]bool)
	for _, part := range strings.Split(what, ",") {
		want[strings.TrimSpace(strings.ToLower(part))] = true
	}
	all := want["all"]
	started := time.Now()

	if all || want["table1"] {
		rows, err := experiments.Table1(r)
		if err != nil {
			return fmt.Errorf("table 1: %w", err)
		}
		if err := experiments.WriteScalingTable(w,
			"Table 1: training speed (samples/s), strong scaling",
			experiments.Table1Settings(), rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["table2"] {
		rows, err := experiments.Table2(r)
		if err != nil {
			return fmt.Errorf("table 2: %w", err)
		}
		if err := experiments.WriteScalingTable(w,
			"Table 2: training speed (samples/s), weak scaling",
			experiments.Table2Settings(), rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["table3"] {
		rows, err := experiments.Table3(r)
		if err != nil {
			return fmt.Errorf("table 3: %w", err)
		}
		if err := experiments.WriteTable3(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["table4"] {
		rows, err := experiments.Table4(r, allModels())
		if err != nil {
			return fmt.Errorf("table 4: %w", err)
		}
		if err := experiments.WriteTable4(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["table5"] {
		rows, err := experiments.Table5(r)
		if err != nil {
			return fmt.Errorf("table 5: %w", err)
		}
		if err := experiments.WriteTable5(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["table6"] {
		rows, err := experiments.Table6(r, allModels())
		if err != nil {
			return fmt.Errorf("table 6: %w", err)
		}
		if err := experiments.WriteTable6(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["fig2"] {
		rows, err := experiments.Figure2(r)
		if err != nil {
			return fmt.Errorf("figure 2: %w", err)
		}
		if err := experiments.WriteFigure2(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["fig3"] {
		bars, err := experiments.Figure3(r)
		if err != nil {
			return fmt.Errorf("figure 3: %w", err)
		}
		if err := experiments.WriteFigure3(w, bars); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["fig4"] {
		rows, err := experiments.Figure4(r)
		if err != nil {
			return fmt.Errorf("figure 4: %w", err)
		}
		if err := experiments.WriteFigure4(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["fig5"] {
		rows, err := experiments.Figure5(r)
		if err != nil {
			return fmt.Errorf("figure 5: %w", err)
		}
		if err := experiments.WriteFigure5(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["ablations"] {
		for _, abl := range []struct {
			name string
			run  func(experiments.Config) ([]experiments.AblationRow, error)
		}{
			{"idle-slot insertion disabled", experiments.AblationInsertion},
			{"critical-path device selection disabled", experiments.AblationCPDevice},
			{"naive flat communication model", experiments.AblationCommModel},
		} {
			rows, err := abl.run(cfg)
			if err != nil {
				return fmt.Errorf("ablation %s: %w", abl.name, err)
			}
			if err := experiments.WriteAblation(w, abl.name, rows); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	if want["scaling"] {
		rows, err := experiments.WorkerScalingSweep(cfg, allModels(), 8, 3)
		if err != nil {
			return fmt.Errorf("scaling: %w", err)
		}
		if err := experiments.WriteWorkerScaling(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["faults"] {
		rows, err := experiments.FaultRecoveryTable(cfg, allModels(), 8, 30,
			experiments.FaultRates())
		if err != nil {
			return fmt.Errorf("fault table: %w", err)
		}
		fmt.Fprintln(w, "Fault recovery: cost vs fault rate (8 GPUs, 30 iterations, faults/iter)")
		if err := experiments.WriteFaultTable(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["hetero"] {
		rows, err := experiments.HeteroMixTable(cfg, allModels())
		if err != nil {
			return fmt.Errorf("hetero table: %w", err)
		}
		fmt.Fprintln(w, "Cluster mix: makespan vs device population (same 8-replica graph per model)")
		if err := experiments.WriteHeteroTable(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["warmstart"] {
		rows, err := experiments.WarmstartTable(cfg, allModels())
		if err != nil {
			return fmt.Errorf("warmstart table: %w", err)
		}
		fmt.Fprintln(w, "Warm start: cold vs seeded recompute (seed = cold 8-GPU strategy)")
		if err := experiments.WriteWarmstartTable(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || want["gap"] {
		rows, err := experiments.OptimalityGapTable(cfg, gapModels, []int{2, 4, 8})
		if err != nil {
			return fmt.Errorf("gap table: %w", err)
		}
		fmt.Fprintln(w, "Optimality gap: OS-DPOS predicted vs ideal-system lower bound (Theorem 1 check)")
		if err := experiments.WriteGapTable(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(generated in %v)\n", time.Since(started).Round(time.Millisecond))
	return nil
}

func allModels() []string {
	return []string{
		"Inception_v3", "VGG-19", "ResNet200", "LeNet", "AlexNet",
		"GNMT", "RNNLM", "Transformer", "Bert-large",
	}
}
