// faultrecovery demonstrates graceful degradation under a device failure:
// a Transformer trains on 8 GPUs under a FastT strategy, one GPU dies
// mid-run at a seeded, deterministic time, and the session recovers
// automatically — it restores the latest checkpoint, shrinks the cluster to
// the 7 survivors, remaps the learned cost models, recomputes the strategy
// with OS-DPOS on the degraded topology, and resumes training. The same
// fault-plan seed always reproduces the same failure point and the same
// recovered strategy.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/models"
	"fastt/internal/session"
	"fastt/internal/sim"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const gpus = 8
	cluster, err := device.SingleServer(gpus)
	if err != nil {
		return err
	}
	model, err := models.Transformer(4096 / gpus)
	if err != nil {
		return err
	}
	train, err := graph.BuildDataParallel(model, gpus)
	if err != nil {
		return err
	}

	// The executor injects faults from a deterministic plan; none is armed
	// yet, so pre-training runs clean.
	exec, err := sim.DefaultFaultyExecutor(cluster, nil)
	if err != nil {
		return err
	}
	s, err := session.New(cluster, exec, train, session.Config{
		Seed:            7,
		CheckpointEvery: 5, // bound the iterations a failure can destroy
	})
	if err != nil {
		return err
	}
	if _, err := s.Bootstrap(); err != nil {
		return err
	}
	iter := s.BootstrapReport().FinalMeasured
	fmt.Fprintf(w, "bootstrapped on %d GPUs: %v/iter\n", gpus, iter.Round(time.Microsecond))

	// Schedule gpu5 to die a few iterations into normal training. Fault
	// times are absolute on the training timeline, so the plan is armed
	// against the post-bootstrap epoch.
	failAt := exec.Epoch() + 7*iter + iter/3
	plan := &sim.FaultPlan{Seed: 7, Faults: []sim.FaultSpec{
		{Kind: "device-failure", AtNs: int64(failAt), Device: 5},
	}}
	if err := exec.SetPlan(plan); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n*** gpu5 scheduled to fail mid-training ***\n\n")

	stats, err := s.Run(20)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "device losses   : %d\n", stats.DeviceLosses)
	fmt.Fprintf(w, "checkpoint      : restored, %d iteration(s) of progress lost\n", stats.LostIterations)
	fmt.Fprintf(w, "recomputed on   : %d GPUs (OS-DPOS, %v wall)\n",
		s.Cluster().NumDevices(), stats.RecomputeWall.Round(time.Millisecond))
	fmt.Fprintf(w, "recovery charge : %v simulated\n", stats.RecoveryTime.Round(time.Millisecond))
	if stats.Degraded != "" {
		fmt.Fprintf(w, "degraded to     : %s\n", stats.Degraded)
	}
	fmt.Fprintf(w, "resumed         : %d iterations at %v/iter on the survivors\n",
		stats.Iterations, stats.AvgIter.Round(time.Microsecond))

	// The recovered strategy is a first-class artifact: it validates against
	// the degraded cluster and records the irregular shape in provenance.
	art := s.ActiveArtifact()
	if err := art.Validate(train, s.Cluster()); err != nil {
		return fmt.Errorf("recovered artifact does not validate: %w", err)
	}
	fmt.Fprintf(w, "artifact        : validates against the degraded cluster (origin %q)\n",
		art.Provenance.Origin)
	return nil
}
