package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFaultRecoveryExample is the acceptance check for the fault-injection
// subsystem end to end: a seeded single-device failure during a Transformer
// run on 8 GPUs recovers automatically — checkpoint restore, OS-DPOS
// recompute on the 7 survivors, resume — without degrading below a full
// recomputed strategy.
func TestFaultRecoveryExample(t *testing.T) {
	if testing.Short() {
		t.Skip("Transformer@8GPU recovery run is too slow for -short")
	}
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"bootstrapped on 8 GPUs",
		"device losses   : 1",
		"checkpoint      : restored",
		"recomputed on   : 7 GPUs",
		"resumed         : 20 iterations",
		"artifact        : validates against the degraded cluster",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "degraded to") {
		t.Errorf("single failure within the retry budget must not degrade:\n%s", out)
	}
	if !strings.Contains(out, "iteration(s) of progress lost") {
		t.Errorf("output does not report lost progress:\n%s", out)
	}

	// Determinism: the same seeds reproduce the identical narrative. The
	// recompute wall-clock is real time, so that measurement is masked out.
	var again bytes.Buffer
	if err := run(&again); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if got, ref := maskWall(again.String()), maskWall(out); got != ref {
		t.Errorf("example output is not deterministic:\n--- first ---\n%s\n--- second ---\n%s",
			ref, got)
	}
}

// maskWall drops the wall-clock measurement from the recompute line; it is
// the one real-time (non-simulated) number in the narrative.
func maskWall(out string) string {
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if j := strings.Index(l, " wall)"); j >= 0 {
			if k := strings.LastIndex(l[:j], ", "); k >= 0 {
				lines[i] = l[:k] + ")"
			}
		}
	}
	return strings.Join(lines, "\n")
}
