// customgraph shows the library on a hand-built computation DAG rather than
// a catalog model: define operations and tensors with the graph API, let
// DPOS place and order them over four GPUs, split the bottleneck operation
// with OS-DPOS, and inspect the schedule with the trace tooling.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/sim"
	"fastt/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A two-branch encoder: a cheap branch and an expensive branch that
	// join in a concat, followed by a huge matmul bottleneck.
	g := graph.New()
	in := g.MustAddOp(&graph.Op{
		Name: "input", Kind: graph.KindInput,
		OutputBytes: 8 << 20, Batch: 64,
	})
	cheap := g.MustAddOp(&graph.Op{
		Name: "branch_cheap", Kind: graph.KindConv2D,
		FLOPs: 2e9, OutputBytes: 8 << 20, Batch: 64, Channels: 128,
	})
	costly := g.MustAddOp(&graph.Op{
		Name: "branch_costly", Kind: graph.KindConv2D,
		FLOPs: 40e9, OutputBytes: 8 << 20, Batch: 64, Channels: 128,
	})
	join := g.MustAddOp(&graph.Op{
		Name: "join", Kind: graph.KindConcat,
		OutputBytes: 16 << 20, Batch: 64, Channels: 256,
	})
	bottleneck := g.MustAddOp(&graph.Op{
		Name: "bottleneck", Kind: graph.KindMatMul,
		FLOPs: 120e9, ParamBytes: 16 << 20, OutputBytes: 4 << 20,
		Batch: 64, Channels: 4096,
	})
	loss := g.MustAddOp(&graph.Op{
		Name: "loss", Kind: graph.KindLoss, FLOPs: 1e6, OutputBytes: 4, Batch: 64,
	})
	g.MustConnect(in, cheap, 8<<20)
	g.MustConnect(in, costly, 8<<20)
	g.MustConnect(cheap, join, 8<<20)
	g.MustConnect(costly, join, 8<<20)
	g.MustConnect(join, bottleneck, 16<<20)
	g.MustConnect(bottleneck, loss, 4<<20)
	if err := g.Validate(); err != nil {
		return err
	}

	cluster, err := device.SingleServer(4)
	if err != nil {
		return err
	}
	oracle := kernels.NewDefaultOracle(cluster)

	// Placement + order only (Alg. 1).
	sched, err := core.DPOS(g, cluster, oracle, core.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("DPOS estimate: %v\n", sched.Makespan.Round(time.Microsecond))
	fmt.Println("placement:")
	for _, op := range g.Ops() {
		fmt.Printf("  %-14s -> gpu%d (start %v)\n",
			op.Name, sched.Placement[op.ID], sched.Start[op.ID].Round(time.Microsecond))
	}

	// Full pipeline with operation splitting (Alg. 2).
	strategy, err := core.ComputeStrategy(g, cluster, oracle, core.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("\nwith splitting: estimate %v, split list %v\n",
		strategy.Predicted.Round(time.Microsecond), strategy.Splits)

	// Execute the strategy and print the timeline.
	engine := sim.NewEngine(cluster, oracle)
	res, err := engine.Run(strategy.Graph, strategy.Placement, sim.Config{
		Discipline: sim.Priority,
		Priorities: strategy.Priorities,
	})
	if err != nil {
		return err
	}
	fmt.Printf("simulated iteration: %v\n\n", res.Makespan.Round(time.Microsecond))
	return trace.WriteTimeline(os.Stdout, res, 80)
}
