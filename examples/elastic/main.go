// elastic demonstrates elastic scale-out closing the loop on fault
// recovery: a Transformer trains on 4 V100s under a FastT strategy, one GPU
// dies mid-run and the session degrades to the 3 survivors (the fault
// recovery path), then a replacement A100 joins and the session grows back —
// it restores the latest checkpoint, grows the cluster (surviving device IDs
// unchanged, so the degraded strategy stays valid while the replacement is
// computed), recomputes the strategy with OS-DPOS on the restored
// mixed-class topology, and resumes training under it. A recompute that
// cannot beat the running strategy — say the joiner sits behind a slow
// cross-rack link — is discarded instead, so a join never slows training.
// The same seed always reproduces the same failure and the same recomputed
// strategy.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/models"
	"fastt/internal/session"
	"fastt/internal/sim"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const gpus = 4
	cluster, err := device.SingleServer(gpus)
	if err != nil {
		return err
	}
	model, err := models.Transformer(4096 / gpus)
	if err != nil {
		return err
	}
	train, err := graph.BuildDataParallel(model, gpus)
	if err != nil {
		return err
	}

	// The executor injects faults from a deterministic plan and can both
	// shrink (device loss) and grow (device join); none is armed yet, so
	// pre-training runs clean.
	exec, err := sim.DefaultFaultyExecutor(cluster, nil)
	if err != nil {
		return err
	}
	s, err := session.New(cluster, exec, train, session.Config{
		Seed:            7,
		CheckpointEvery: 5, // bound the iterations a failure or join rolls back
	})
	if err != nil {
		return err
	}
	if _, err := s.Bootstrap(); err != nil {
		return err
	}
	iter := s.BootstrapReport().FinalMeasured
	fmt.Fprintf(w, "bootstrapped on %d V100s: %v/iter\n", gpus, iter.Round(time.Microsecond))

	// Kill gpu2 a few iterations into normal training; the session recovers
	// onto the 3 survivors.
	failAt := exec.Epoch() + 5*iter + iter/3
	plan := &sim.FaultPlan{Seed: 7, Faults: []sim.FaultSpec{
		{Kind: "device-failure", AtNs: int64(failAt), Device: 2},
	}}
	if err := exec.SetPlan(plan); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n*** gpu2 scheduled to fail mid-training ***\n\n")
	degraded, err := s.Run(10)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "degraded   : %d survivor(s) at %v/iter after %d device loss(es)\n",
		s.Cluster().NumDevices(), degraded.AvgIter.Round(time.Microsecond), degraded.DeviceLosses)

	// A replacement joins — an NVLink-attached A100 this time. Grow restores
	// the checkpoint, recomputes on the restored 4-device (now mixed-class)
	// cluster, and activates the recomputed strategy when it profiles faster
	// than the degraded one.
	fmt.Fprintf(w, "\n*** a replacement A100 joins the server ***\n\n")
	rep, err := s.Grow(device.JoinSpec{Class: device.ClassA100, Server: 0})
	if err != nil {
		return err
	}
	joined := s.Cluster().Device(rep.Device)
	fmt.Fprintf(w, "joined     : %s (%s) as device %d of %d\n",
		joined.Name, rep.Class, rep.Device, rep.Devices)
	fmt.Fprintf(w, "checkpoint : restored, %d iteration(s) of progress lost\n", rep.LostIterations)
	fmt.Fprintf(w, "recomputed : %v on %d GPUs (OS-DPOS, %v wall)\n",
		rep.Recomputed, rep.Devices, rep.RecomputeWall.Round(time.Millisecond))
	fmt.Fprintf(w, "charge     : %v simulated (restart + profiling)\n",
		rep.RecoveryTime.Round(time.Millisecond))

	stats, err := s.Run(10)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "resumed    : %d iterations at %v/iter on the restored cluster\n",
		stats.Iterations, stats.AvgIter.Round(time.Microsecond))

	// The recomputed strategy is a first-class artifact: it validates against
	// the grown cluster and records the mixed-class shape in provenance.
	art := s.ActiveArtifact()
	if err := art.Validate(train, s.Cluster()); err != nil {
		return fmt.Errorf("recomputed artifact does not validate: %w", err)
	}
	fmt.Fprintf(w, "artifact   : validates against the grown cluster (classes %q)\n",
		art.Provenance.Cluster.Classes)
	return nil
}
