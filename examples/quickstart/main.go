// Quickstart: train a small CNN on two simulated GPUs, comparing
// TensorFlow-style data parallelism with the strategy FastT finds
// automatically. This walks the whole public surface in ~50 lines:
// build a model graph, replicate it, start a FastT session, bootstrap
// (profiling + strategy search with rollback), and run.
package main

import (
	"fmt"
	"log"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/placement"
	"fastt/internal/session"
	"fastt/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two V100-class GPUs on one server, NVLink between them.
	cluster, err := device.SingleServer(2)
	if err != nil {
		return err
	}

	// LeNet at a global batch of 256, data-parallel over the two GPUs:
	// each replica processes 128 samples.
	const globalBatch = 256
	model, err := models.LeNet(globalBatch / 2)
	if err != nil {
		return err
	}
	train, err := graph.BuildDataParallel(model, 2)
	if err != nil {
		return err
	}
	fmt.Printf("training graph: %d ops, %d edges\n", train.NumOps(), train.NumEdges())

	// Baseline: the default data-parallel deployment (replica r on GPU r,
	// shared variables on GPU 0), executed FIFO.
	engine := sim.NewEngine(cluster, kernels.NewDefaultOracle(cluster))
	dpPlace, err := placement.DataParallel(train, cluster)
	if err != nil {
		return err
	}
	dp, err := engine.Run(train, dpPlace, sim.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("data parallel: %v/iter (%.0f samples/s)\n",
		dp.Makespan.Round(time.Microsecond), globalBatch/dp.Makespan.Seconds())

	// FastT: bootstrap cost models from a few profiled iterations, compute
	// placement + order + splits with DPOS/OS-DPOS, activate with rollback
	// protection, then train.
	s, err := session.New(cluster, sim.WrapEngine(engine), train, session.Config{Seed: 42})
	if err != nil {
		return err
	}
	report, err := s.Bootstrap()
	if err != nil {
		return err
	}
	stats, err := s.Run(10)
	if err != nil {
		return err
	}
	fmt.Printf("FastT        : %v/iter (%.0f samples/s), start=%s, strategy calc=%v\n",
		stats.AvgIter.Round(time.Microsecond), globalBatch/stats.AvgIter.Seconds(),
		report.Start, report.CalcWallTotal.Round(time.Microsecond))
	fmt.Printf("speedup      : %+.1f%%\n", (dp.Makespan.Seconds()/stats.AvgIter.Seconds()-1)*100)
	return nil
}
