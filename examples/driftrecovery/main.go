// driftrecovery demonstrates the adaptive side of FastT's cost models
// (Sec. 4: "the cost models are updated only when the execution times have
// changed significantly based on our periodical profiling"): training runs
// under a FastT strategy, then one GPU loses most of its throughput
// (thermal throttling, a noisy neighbour). The periodic profiler detects
// the drift, refreshes the cost models, recomputes the strategy against the
// now-asymmetric cluster, and activates it — with the usual rollback
// protection. It also shows cost-model persistence: the learned models are
// saved and reloaded into a second session, which skips the exploration.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/models"
	"fastt/internal/session"
	"fastt/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := device.SingleServer(2)
	if err != nil {
		return err
	}
	model, err := models.InceptionV3(32)
	if err != nil {
		return err
	}
	train, err := graph.BuildDataParallel(model, 2)
	if err != nil {
		return err
	}
	s, err := session.New(cluster, sim.DefaultExecutor(cluster), train, session.Config{
		Seed:           11,
		ReprofileEvery: 4, // the paper's periodic profiling
	})
	if err != nil {
		return err
	}
	if _, err := s.Bootstrap(); err != nil {
		return err
	}
	healthy, err := s.Run(8)
	if err != nil {
		return err
	}
	fmt.Printf("healthy cluster : %v/iter (%d reprofiles, %d recomputes)\n",
		healthy.AvgIter.Round(time.Microsecond), healthy.Reprofiles, healthy.Recomputed)

	// GPU 1 degrades to a third of its throughput mid-training.
	cluster.Device(1).PeakFLOPS /= 3
	cluster.Device(1).MemBandwidth /= 3
	fmt.Println("\n*** gpu1 throttles to 1/3 throughput ***")

	degraded, err := s.Run(16)
	if err != nil {
		return err
	}
	fmt.Printf("after throttling: %v/iter (%d reprofiles, %d recomputes)\n",
		degraded.AvgIter.Round(time.Microsecond), degraded.Reprofiles, degraded.Recomputed)
	if degraded.Recomputed > 0 {
		fmt.Println("the periodic profiler noticed the drift and recomputed the strategy")
	} else {
		fmt.Println("drift detected but the running strategy remained the best available")
	}

	// Persist the learned cost models for the next training job.
	var blob strings.Builder
	if err := s.SaveCosts(&blob); err != nil {
		return err
	}
	next, err := session.New(cluster, sim.DefaultExecutor(cluster), train, session.Config{Seed: 12})
	if err != nil {
		return err
	}
	if err := next.LoadCosts(strings.NewReader(blob.String())); err != nil {
		return err
	}
	cov := next.Costs().Comp.Coverage(train)
	fmt.Printf("\nnew session preloaded %d cost entries (coverage %.0f%%): pre-training exploration skipped\n",
		next.Costs().Comp.NumEntries(), 100*cov)
	return nil
}
