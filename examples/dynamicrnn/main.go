// dynamicrnn demonstrates the cyclic-graph support the paper lists as
// future work ("A potential solution is to break the cycles and reorganize
// the graph to be a DAG"): a dynamic RNN is authored as a while-loop — a
// cell whose state feeds back into itself — and graph.Unroll statically
// unrolls the loop body over the sequence length, yielding a DAG that DPOS
// then places and orders across the GPUs.
package main

import (
	"fmt"
	"log"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		batch  = 64
		hidden = 1024
		seqLen = 24 // trip count of the while loop
	)

	// Author the dynamic RNN as a cyclic graph: embed -> cell <-> state,
	// with an attention-style readout after the loop.
	g := graph.New()
	tokens := g.MustAddOp(&graph.Op{
		Name: "tokens", Kind: graph.KindInput,
		OutputBytes: int64(batch) * 4, Batch: batch,
	})
	embed := g.MustAddOp(&graph.Op{
		Name: "embed", Kind: graph.KindEmbedding,
		FLOPs:       int64(batch) * hidden,
		ParamBytes:  10000 * hidden * 4,
		OutputBytes: int64(batch) * hidden * 4, Batch: batch, Channels: hidden,
	})
	cell := g.MustAddOp(&graph.Op{
		Name: "cell", Kind: graph.KindLSTMCell,
		FLOPs:       2 * 4 * int64(batch) * hidden * 2 * hidden,
		ParamBytes:  4 * hidden * 2 * hidden * 4 / seqLen, // amortized over trips
		OutputBytes: 2 * int64(batch) * hidden * 4, Batch: batch, Channels: hidden,
	})
	state := g.MustAddOp(&graph.Op{
		Name: "state", Kind: graph.KindIdentity,
		OutputBytes: 2 * int64(batch) * hidden * 4, Batch: batch,
	})
	readout := g.MustAddOp(&graph.Op{
		Name: "readout", Kind: graph.KindMatMul,
		FLOPs:       2 * int64(batch) * hidden * 10000,
		ParamBytes:  int64(hidden) * 10000 * 4,
		OutputBytes: int64(batch) * 10000 * 4, Batch: batch, Channels: 10000,
	})
	g.MustConnect(tokens, embed, int64(batch)*4)
	g.MustConnect(embed, cell, int64(batch)*hidden*4)
	g.MustConnect(cell, state, 2*int64(batch)*hidden*4)
	g.MustConnect(state, cell, 2*int64(batch)*hidden*4) // the while-loop back edge
	g.MustConnect(state, readout, 2*int64(batch)*hidden*4)

	fmt.Printf("authored graph: %d ops, cyclic: %v, loop bodies: %d\n",
		g.NumOps(), g.HasCycles(), len(g.SCCs()))

	// Break the cycle: unroll the loop body over the sequence.
	dag, err := graph.Unroll(g, seqLen)
	if err != nil {
		return err
	}
	fmt.Printf("unrolled (%d trips): %d ops, cyclic: %v\n\n",
		seqLen, dag.NumOps(), dag.HasCycles())

	// Schedule the DAG over two GPUs and execute it.
	cluster, err := device.SingleServer(2)
	if err != nil {
		return err
	}
	oracle := kernels.NewDefaultOracle(cluster)
	st, err := core.ComputeStrategy(dag, cluster, oracle, core.Options{})
	if err != nil {
		return err
	}
	engine := sim.NewEngine(cluster, oracle)
	res, err := engine.Run(st.Graph, st.Placement, sim.Config{
		Discipline: sim.Priority,
		Priorities: st.Priorities,
	})
	if err != nil {
		return err
	}
	counts := make([]int, 2)
	for _, d := range st.Placement {
		counts[d]++
	}
	fmt.Printf("scheduled on 2 GPUs: %v ops per device, iteration %v\n",
		counts, res.Makespan.Round(time.Microsecond))
	if len(st.Splits) > 0 {
		fmt.Printf("OS-DPOS additionally split: %v\n", st.Splits)
	}
	for _, name := range []string{"cell/iter0", fmt.Sprintf("cell/iter%d", seqLen-1)} {
		if op, ok := st.Graph.OpByName(name); ok {
			fmt.Printf("%s on gpu%d\n", name, st.Placement[op.ID])
		} else {
			fmt.Printf("%s was split into sub-operations\n", name)
		}
	}
	return nil
}
