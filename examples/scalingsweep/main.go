// scalingsweep sweeps one model across GPU counts under both scaling
// regimes, printing a miniature version of the paper's Tables 1 and 2 —
// handy for seeing where data parallelism stops scaling and how much of
// that FastT recovers.
package main

import (
	"flag"
	"fmt"
	"log"

	"fastt/internal/experiments"
)

func main() {
	model := flag.String("model", "GNMT", "benchmark model")
	flag.Parse()
	if err := run(*model); err != nil {
		log.Fatal(err)
	}
}

func run(model string) error {
	r := experiments.NewRunner(experiments.Config{MeasureIters: 3, Seed: 1})
	for _, scaling := range []experiments.Scaling{experiments.Strong, experiments.Weak} {
		fmt.Printf("%s, %s scaling:\n", model, scaling)
		fmt.Printf("  %-6s %-8s %12s %12s %9s\n", "GPUs", "batch", "DP", "FastT", "speedup")
		for _, gpus := range []int{1, 2, 4, 8} {
			cell, err := r.Cell(model, scaling, gpus, 1)
			if err != nil {
				return err
			}
			dp, ft := "OOM", "OOM"
			if !cell.DPOOM {
				dp = fmt.Sprintf("%.1f", cell.DPSpeed)
			}
			if !cell.FastTOOM {
				ft = fmt.Sprintf("%.1f", cell.FastTSpeed)
			}
			fmt.Printf("  %-6d %-8d %12s %12s %8.1f%%\n",
				gpus, cell.GlobalBatch, dp, ft, cell.Speedup())
		}
		fmt.Println()
	}
	return nil
}
