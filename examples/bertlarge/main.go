// bertlarge reproduces the scenario of the paper's Table 3: BERT-large at
// sequence length 64 does not fit a single 16 GB GPU beyond batch 16, and
// data parallelism on two GPUs dies at global batch 40 — but FastT notices
// the OOM, bootstraps from model parallelism instead, and trains batch 40
// and 48 across the two GPUs without any manual placement.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/placement"
	"fastt/internal/session"
	"fastt/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := device.SingleServer(2)
	if err != nil {
		return err
	}
	fmt.Println("BERT-large (24 layers, seq len 64) on 2x16GB GPUs")
	fmt.Printf("%-14s %-16s %-24s\n", "global batch", "data parallel", "FastT")
	for _, batch := range []int{16, 32, 40, 48} {
		dpCol := dataParallelColumn(cluster, batch)
		ftCol, err := fastTColumn(cluster, batch)
		if err != nil {
			return err
		}
		fmt.Printf("%-14d %-16s %-24s\n", batch, dpCol, ftCol)
	}
	return nil
}

// dataParallelColumn runs the DP baseline at the batch, reporting OOM where
// it dies.
func dataParallelColumn(cluster *device.Cluster, batch int) string {
	model, err := models.BertLarge(batch / 2)
	if err != nil {
		return "error"
	}
	train, err := graph.BuildDataParallel(model, 2)
	if err != nil {
		return "error"
	}
	place, err := placement.DataParallel(train, cluster)
	if err != nil {
		return "error"
	}
	engine := sim.NewEngine(cluster, kernels.NewDefaultOracle(cluster))
	res, err := engine.Run(train, place, sim.Config{})
	if err != nil {
		var oom *sim.OOMError
		if errors.As(err, &oom) {
			return "OOM"
		}
		return "error"
	}
	return fmt.Sprintf("%.3fs/iter", res.Makespan.Seconds())
}

// fastTColumn lets FastT pick its own path: data-parallel bootstrap when it
// fits, model-parallel otherwise.
func fastTColumn(cluster *device.Cluster, batch int) (string, error) {
	// FastT's input-graph rule: DP graph when feasible, else the plain DAG.
	model, err := models.BertLarge(batch / 2)
	if err != nil {
		return "", err
	}
	train, err := graph.BuildDataParallel(model, 2)
	if err != nil {
		return "", err
	}
	place, err := placement.DataParallel(train, cluster)
	if err != nil {
		return "", err
	}
	engine := sim.NewEngine(cluster, kernels.NewDefaultOracle(cluster))
	if _, err := engine.Run(train, place, sim.Config{}); err != nil {
		full, err := models.BertLarge(batch)
		if err != nil {
			return "", err
		}
		if train, err = graph.BuildDataParallel(full, 1); err != nil {
			return "", err
		}
	}
	s, err := session.New(cluster, sim.WrapEngine(engine), train, session.Config{Seed: 7, MaxRounds: 2})
	if err != nil {
		return "", err
	}
	report, err := s.Bootstrap()
	if err != nil {
		if errors.Is(err, session.ErrNoFeasibleStart) {
			return "OOM", nil
		}
		return "", err
	}
	stats, err := s.Run(3)
	if err != nil {
		return "", err
	}
	_ = time.Second
	return fmt.Sprintf("%.3fs/iter (%s)", stats.AvgIter.Seconds(), report.Start), nil
}
