// Package fastt's root-level benchmarks regenerate every table and figure
// of the paper's evaluation; each benchmark reports the headline metric of
// its artifact. Run `go test -bench=. -benchmem` here, or use cmd/benchtab
// for the fully formatted tables.
package fastt

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/experiments"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/optimal"
	"fastt/internal/pipeline"
	"fastt/internal/placement"
	"fastt/internal/sim"
)

// benchCfg trades a little repetition for runtime: the simulator is
// deterministic up to jitter, so three measured iterations suffice.
func benchCfg() experiments.Config {
	return experiments.Config{MeasureIters: 3, MaxRounds: 2, Seed: 1}
}

// meanBestSpeedup aggregates a scaling table's last column.
func meanBestSpeedup(rows []experiments.ScalingRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		sum += r.BestSpeedup
	}
	return sum / float64(len(rows))
}

// BenchmarkTable1 regenerates Table 1 (strong scaling, nine models, five
// settings) and reports the mean of the per-model best FastT speedups.
func BenchmarkTable1(b *testing.B) {
	r := experiments.NewRunner(benchCfg())
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(r)
		if err != nil {
			b.Fatalf("Table1: %v", err)
		}
		b.ReportMetric(meanBestSpeedup(rows), "mean-speedup-%")
	}
}

// BenchmarkTable2 regenerates Table 2 (weak scaling).
func BenchmarkTable2(b *testing.B) {
	r := experiments.NewRunner(benchCfg())
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(r)
		if err != nil {
			b.Fatalf("Table2: %v", err)
		}
		b.ReportMetric(meanBestSpeedup(rows), "mean-speedup-%")
	}
}

// BenchmarkTable3 regenerates Table 3 (BERT-large batch sweep) and reports
// the largest batch FastT trains on two GPUs.
func BenchmarkTable3(b *testing.B) {
	r := experiments.NewRunner(benchCfg())
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(r)
		if err != nil {
			b.Fatalf("Table3: %v", err)
		}
		maxBatch := 0
		for _, row := range rows {
			if !row.FastTOOM && row.GlobalBatch > maxBatch {
				maxBatch = row.GlobalBatch
			}
		}
		b.ReportMetric(float64(maxBatch), "max-fastt-batch")
	}
}

// BenchmarkTable4 regenerates Table 4 (strategy computation time) and
// reports the worst-case wall time in seconds.
func BenchmarkTable4(b *testing.B) {
	r := experiments.NewRunner(benchCfg())
	names := []string{
		"Inception_v3", "VGG-19", "ResNet200", "LeNet", "AlexNet",
		"GNMT", "RNNLM", "Transformer", "Bert-large",
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(r, names)
		if err != nil {
			b.Fatalf("Table4: %v", err)
		}
		var worst float64
		for _, row := range rows {
			for _, d := range row.CalcWall {
				if s := d.Seconds(); s > worst {
					worst = s
				}
			}
		}
		b.ReportMetric(worst, "max-calc-s")
	}
}

// BenchmarkTable5 regenerates Table 5 (VGG-19 split decisions) and reports
// the number of representative ops FastT decided to split.
func BenchmarkTable5(b *testing.B) {
	r := experiments.NewRunner(benchCfg())
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(r)
		if err != nil {
			b.Fatalf("Table5: %v", err)
		}
		split := 0
		for _, row := range rows {
			if row.Split {
				split++
			}
		}
		b.ReportMetric(float64(split), "split-ops")
	}
}

// BenchmarkTable6 regenerates Table 6 (operation splitting on/off) and
// reports the mean split speedup.
func BenchmarkTable6(b *testing.B) {
	r := experiments.NewRunner(benchCfg())
	names := []string{
		"Inception_v3", "VGG-19", "ResNet200", "LeNet", "AlexNet",
		"GNMT", "RNNLM", "Transformer", "Bert-large",
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table6(r, names)
		if err != nil {
			b.Fatalf("Table6: %v", err)
		}
		var sum float64
		for _, row := range rows {
			sum += row.SpeedupPct
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-split-speedup-%")
	}
}

// BenchmarkFigure2 regenerates Fig. 2 (order enforcement) and reports the
// best per-iteration-time reduction. It doubles as the order-enforcement
// ablation.
func BenchmarkFigure2(b *testing.B) {
	r := experiments.NewRunner(benchCfg())
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure2(r)
		if err != nil {
			b.Fatalf("Figure2: %v", err)
		}
		var best float64
		for _, row := range rows {
			if row.ReductionPct > best {
				best = row.ReductionPct
			}
		}
		b.ReportMetric(best, "best-reduction-%")
	}
}

// BenchmarkFigure3 regenerates Fig. 3 (comparison with published systems)
// and reports FastT's mean normalized speed.
func BenchmarkFigure3(b *testing.B) {
	r := experiments.NewRunner(benchCfg())
	for i := 0; i < b.N; i++ {
		bars, err := experiments.Figure3(r)
		if err != nil {
			b.Fatalf("Figure3: %v", err)
		}
		var sum float64
		n := 0
		for _, bar := range bars {
			if bar.Measured {
				sum += bar.Normalized
				n++
			}
		}
		b.ReportMetric(sum/float64(n), "mean-normalized")
	}
}

// BenchmarkFigure4 regenerates Fig. 4 (ops per GPU) and reports the maximal
// imbalance ratio (max/min ops per device), the signature of FastT's
// uneven, sync-avoiding placements.
func BenchmarkFigure4(b *testing.B) {
	r := experiments.NewRunner(benchCfg())
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(r)
		if err != nil {
			b.Fatalf("Figure4: %v", err)
		}
		var worst float64
		for _, row := range rows {
			minC, maxC := row.Counts[0], row.Counts[0]
			for _, c := range row.Counts {
				if c < minC {
					minC = c
				}
				if c > maxC {
					maxC = c
				}
			}
			if minC > 0 {
				if ratio := float64(maxC) / float64(minC); ratio > worst {
					worst = ratio
				}
			}
		}
		b.ReportMetric(worst, "max-imbalance")
	}
}

// BenchmarkFigure5 regenerates Fig. 5 (compute/memcpy breakdown) and
// reports the mean memcpy reduction of FastT over DP in percent.
func BenchmarkFigure5(b *testing.B) {
	r := experiments.NewRunner(benchCfg())
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(r)
		if err != nil {
			b.Fatalf("Figure5: %v", err)
		}
		var sum float64
		n := 0
		for _, row := range rows {
			if row.DP.Memcpy > 0 {
				sum += (1 - row.FastT.Memcpy/row.DP.Memcpy) * 100
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "mean-memcpy-reduction-%")
		}
	}
}

// BenchmarkAblationInsertion measures the cost of disabling idle-slot
// insertion in DPOS.
func BenchmarkAblationInsertion(b *testing.B) {
	benchAblation(b, experiments.AblationInsertion)
}

// BenchmarkAblationCPDevice measures the cost of disabling dedicated
// critical-path device selection.
func BenchmarkAblationCPDevice(b *testing.B) {
	benchAblation(b, experiments.AblationCPDevice)
}

// BenchmarkAblationCommModel measures the cost of replacing the per-pair
// linear-regression communication model with a flat estimate.
func BenchmarkAblationCommModel(b *testing.B) {
	benchAblation(b, experiments.AblationCommModel)
}

// BenchmarkOptimalityGap measures how far DPOS lands from the exact
// optimum (branch-and-bound, internal/optimal) on random small DAGs — the
// gap Theorem 1 bounds but the paper cannot measure. Reports the mean and
// worst DPOS/optimal makespan ratios.
func BenchmarkOptimalityGap(b *testing.B) {
	cluster, err := device.SingleServer(2)
	if err != nil {
		b.Fatal(err)
	}
	oracle := kernels.NewDefaultOracle(cluster)
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(42))
		var sum, worst float64
		const trials = 30
		for trial := 0; trial < trials; trial++ {
			g := randomBenchDAG(rng, rng.Intn(7)+3)
			opt, err := optimal.Schedule(g, cluster, oracle, optimal.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sched, err := core.DPOS(g, cluster, oracle, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var heuristic time.Duration
			for id := 0; id < g.NumOps(); id++ {
				if sched.Finish[id] > heuristic {
					heuristic = sched.Finish[id]
				}
			}
			ratio := heuristic.Seconds() / opt.Makespan.Seconds()
			sum += ratio
			if ratio > worst {
				worst = ratio
			}
		}
		b.ReportMetric(sum/trials, "mean-gap-ratio")
		b.ReportMetric(worst, "worst-gap-ratio")
	}
}

// randomBenchDAG builds a small random DAG with realistic op costs.
func randomBenchDAG(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.MustAddOp(&graph.Op{
			Name:        fmt.Sprintf("op%d", i),
			Kind:        graph.KindConv2D,
			FLOPs:       rng.Int63n(5e9) + 1e6,
			OutputBytes: rng.Int63n(8<<20) + 1,
			Batch:       8,
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				g.MustConnect(i, j, rng.Int63n(4<<20)+1)
			}
		}
	}
	return g
}

// BenchmarkAblationPipeline measures GPipe-style micro-batching (the
// pipeline extension) against naive model parallelism on VGG-19 across two
// GPUs, reporting the pipelined speedup in percent.
func BenchmarkAblationPipeline(b *testing.B) {
	cluster, err := device.SingleServer(2)
	if err != nil {
		b.Fatal(err)
	}
	engine := sim.NewEngine(cluster, kernels.NewDefaultOracle(cluster))
	const miniBatch, micro = 32, 4
	for i := 0; i < b.N; i++ {
		full, err := models.VGG19(miniBatch)
		if err != nil {
			b.Fatal(err)
		}
		train, err := graph.BuildDataParallel(full, 1)
		if err != nil {
			b.Fatal(err)
		}
		mpPlace, err := placement.ModelParallel(train, cluster, graph.DefaultMemoryModel())
		if err != nil {
			b.Fatal(err)
		}
		naive, err := engine.Run(train, mpPlace, sim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		microModel, err := models.VGG19(miniBatch / micro)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := pipeline.Build(microModel, cluster, graph.MemoryModel{}, micro)
		if err != nil {
			b.Fatal(err)
		}
		piped, err := engine.Run(plan.Graph, plan.Placement, sim.Config{
			Discipline: sim.Priority,
			Priorities: plan.Priorities,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((naive.Makespan.Seconds()/piped.Makespan.Seconds()-1)*100, "pipeline-speedup-%")
	}
}

func benchAblation(b *testing.B, run func(experiments.Config) ([]experiments.AblationRow, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := run(benchCfg())
		if err != nil {
			b.Fatalf("ablation: %v", err)
		}
		var sum float64
		for _, row := range rows {
			sum += row.DeltaPct
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-ablation-delta-%")
	}
}

// BenchmarkDPOSThroughput measures the raw strategy-calculator speed on a
// real workload (ResNet200 replicated over 4 GPUs, ~4300 ops) — the
// quantity behind Table 4's claim that white-box placement runs in seconds
// on the training node.
func BenchmarkDPOSThroughput(b *testing.B) {
	cluster, err := device.SingleServer(4)
	if err != nil {
		b.Fatal(err)
	}
	m, err := models.ResNet200(8)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.BuildDataParallel(m, 4)
	if err != nil {
		b.Fatal(err)
	}
	oracle := kernels.NewDefaultOracle(cluster)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := core.DPOS(g, cluster, oracle, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sched.Makespan <= 0 {
			b.Fatal("bad schedule")
		}
	}
	b.ReportMetric(float64(g.NumOps()), "ops-per-graph")
}

// BenchmarkOSDPOSParallel measures the concurrent OS-DPOS candidate search
// on the split-heavy models at 8 GPUs across worker counts. workers=1 is
// the sequential baseline; the ratio to it is the parallel speedup the
// Table 4 extension reports.
func BenchmarkOSDPOSParallel(b *testing.B) {
	cluster, err := device.SingleServer(8)
	if err != nil {
		b.Fatal(err)
	}
	oracle := kernels.NewDefaultOracle(cluster)
	for _, name := range []string{"VGG-19", "Transformer"} {
		spec, err := models.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		m, err := spec.Build(8)
		if err != nil {
			b.Fatal(err)
		}
		g, err := graph.BuildDataParallel(m, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, w), func(b *testing.B) {
				evaluated := 0
				for i := 0; i < b.N; i++ {
					res, err := core.OSDPOS(g, cluster, oracle, core.Options{MaxSplitOps: 8, Workers: w})
					if err != nil {
						b.Fatal(err)
					}
					if res.Schedule.Makespan <= 0 {
						b.Fatal("bad schedule")
					}
					evaluated = res.Evaluated
				}
				b.ReportMetric(float64(evaluated), "candidates")
			})
		}
	}
}

// BenchmarkWarmstartRecompute measures warm-started strategy recomputes
// (Options.Seed) against cold searches for the Transformer at 8 GPUs, the
// two cases scripts/bench.sh derives its warm-start ratios from:
//
//   - recompute/*: the same 8-GPU cluster — the cost-drift, bootstrap-round
//     and serve related-key path. The seed wins (nothing beats its exact
//     makespan), the walk stops after one round, and the speedup is large;
//     bench.sh gates best(cold)/best(seeded) at >= 1.5x.
//   - shrink/*: 7 survivors after a device failure — the fault-recovery
//     path. Here a 7-GPU candidate beats the re-evaluated 8-GPU seed in
//     round one, so the seeded walk is byte-identical to the cold one from
//     the first commit on and the ratio is structurally bounded near 1x
//     (see EXPERIMENTS.md, "Warm-started recompute"); bench.sh gates it as
//     a non-regression floor.
//
// Workers=1 keeps the measurement deterministic and honest on the 1-core
// CI container; the seed search itself runs outside the timer.
func BenchmarkWarmstartRecompute(b *testing.B) {
	base, err := device.SingleServer(8)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := models.ByName("Transformer")
	if err != nil {
		b.Fatal(err)
	}
	m, err := spec.Build(spec.GlobalBatch / 8)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.BuildDataParallel(m, 8)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{MaxSplitOps: 8, MaxSyncGroups: 8, Workers: 1}
	seedSt, err := core.ComputeStrategy(g, base, kernels.NewDefaultOracle(base), opts)
	if err != nil {
		b.Fatal(err)
	}
	shrunk, _, err := base.Without(7)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		cluster *device.Cluster
	}{
		{"recompute", base},
		{"shrink", shrunk},
	} {
		oracle := kernels.NewDefaultOracle(tc.cluster)
		for _, seeded := range []bool{false, true} {
			variant, o := "cold", opts
			if seeded {
				variant, o.Seed = "seeded", &seedSt.Artifact
			}
			b.Run(tc.name+"/"+variant, func(b *testing.B) {
				var st *core.Strategy
				for i := 0; i < b.N; i++ {
					st, err = core.ComputeStrategy(g, tc.cluster, oracle, o)
					if err != nil {
						b.Fatal(err)
					}
					if seeded && !st.Seeded {
						b.Fatal("seed was not applied")
					}
				}
				b.ReportMetric(float64(st.Evaluated), "evaluated")
				b.ReportMetric(float64(st.Pruned), "pruned")
			})
		}
	}
}

// BenchmarkSimulatorThroughput measures the discrete-event engine on the
// same workload, reporting simulated ops per wall second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cluster, err := device.SingleServer(4)
	if err != nil {
		b.Fatal(err)
	}
	m, err := models.ResNet200(8)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.BuildDataParallel(m, 4)
	if err != nil {
		b.Fatal(err)
	}
	place, err := placement.DataParallel(g, cluster)
	if err != nil {
		b.Fatal(err)
	}
	engine := sim.NewEngine(cluster, kernels.NewDefaultOracle(cluster))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(g, place, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumOps()), "ops-per-iteration")
}
